"""The C emitter: kernel IR → a self-contained native measured-pass kernel.

This is the native-tier sibling of :mod:`repro.engine.emit.python`.  It does
not translate the python tree — C has no exceptions, dicts, or lists — it
builds its *own* statement tree with :func:`build_c_kernel_ir`, mirroring
:func:`repro.engine.ir.build_kernel_ir` stage by stage, out of the same IR
node types: the same :class:`~repro.engine.ir.Guard` features in the same
positions, the same :class:`~repro.engine.ir.Stat` markers, and the same
foldable :class:`~repro.engine.ir.Mod` / :class:`~repro.engine.ir.Div` /
:class:`~repro.engine.ir.ScaledDiv` arithmetic nodes — so one cached build
serves every :class:`~repro.engine.ir.KernelFeatures` point through the
unchanged :func:`~repro.engine.ir.lower_kernel` transform pipeline.

The generated kernel is one C function::

    int64_t kernel(int64_t *a);

``a`` is a flat argument vector (:data:`ARG_SLOTS`): scalars, machine
addresses of int64/uint8 buffers, and one output slot per dynamic counter.
:mod:`repro.engine.native` owns packing Python state into those buffers,
compiling/caching the shared library, and unpacking afterwards.  Python
container state maps onto C-friendly layouts whose observable behaviour is
bit-identical to the flat models of :mod:`repro.engine.state`:

* **L1I / L1D / PHT** — the ``array('q')`` buffers of
  :class:`~repro.engine.state.FlatState`, mutated *in place* (hits and
  misses are the same segment memmoves the list model performs);
* **BTB** — a dense ``pc → target`` table (``-1`` absent) plus a FIFO ring
  of insertion order, reproducing the dict's oldest-key eviction;
* **RSB** — a bounded ring; **loop predictor** — dense per-PC rows plus a
  creation journal so unpacking never scans the dense tables;
* **store queue** — a small ring with linear scan (capacity
  ``sq_size + 1``, the dict's transient overfull state);
* **issue port map** — an open-addressed hash (counts, 0 = empty) sized to
  load factor ≤ ½, replacing the defaultdict;
* **L2 / L3** — dense per-set way counts + tag rows with a touched-set
  journal, so session setup/teardown is proportional to the *occupied* set
  count, never the geometry.

``ReplayMismatchError`` surfaces as a nonzero return code with the
offending PCs parked in the ``err_*`` slots; the wrapper re-raises with the
exact message the python kernels produce.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence, Tuple

from repro.engine.ir import (
    Block,
    Expr,
    Guard,
    KernelFeatures,
    L,
    Line,
    Mod,
    Div,
    ScaledDiv,
    Stat,
    Stmt,
    lines,
    lower_kernel,
    stat,
)
from repro.engine.kernels import DYNAMIC_COUNTERS, relevant_flag_mask
from repro.uarch.config import CoreConfig
from repro.uarch.defenses.base import EnginePolicySpec

#: Bumped whenever the argument layout or prelude changes incompatibly —
#: part of the compiled-artifact cache key, so stale ``.so`` files can never
#: be loaded against a new ABI.
C_ABI_VERSION = 3

#: Scalar slots (plain int64 values; ``io`` ones are read at entry and
#: written back at exit so a session's calls chain).
_SCALARS = (
    "n",
    "num_regs",
    "flush_interval",
    "history",
    "crypto_pcs_len",
    "btb_head",
    "btb_count",
    "rsb_head",
    "rsb_len",
    "res_len",
    "n_traced",
    "loop_n",
    "l2_occ_n",
    "l3_occ_n",
    "ib_mask",
    "err_a",
    "err_b",
    "err_c",
)

#: Buffer slots (machine addresses stored as int64).
_POINTERS = (
    # Trace columns (read-only).
    "pcs",
    "npcs",
    "mem",
    "bcs",
    "dst",
    "src0",
    "src1",
    "src2",
    "flags",
    "lat_cls",
    # Per-workload read-only tables.
    "crypto_pcs",  # uint8
    "plan_cls",  # uint8
    "plan_stp",  # dense int64, -1 = absent
    "traced_pcs",
    "tgt_off",
    "tgt_len",
    "tgt_data",
    "eid_data",
    "btu_long",  # uint8
    # Mutable state buffers.
    "l1i",
    "l1d",
    "pht",
    "btb_val",
    "btb_fifo",
    "rsb_buf",
    "loop_run",
    "loop_trip",
    "loop_conf",
    "loop_present",  # uint8
    "loop_keys",
    "btu_pos",
    "res_buf",
    "l2_cnt",
    "l2_data",
    "l2_occ",
    "l3_cnt",
    "l3_data",
    "l3_occ",
    # Per-call scratch (zeroed by the kernel at entry).
    "reg_ready",
    "ib_keys",
    "ib_vals",
)

#: The full argument vector layout, by slot name.
ARG_SLOTS: Tuple[str, ...] = (
    _SCALARS + _POINTERS + tuple("counter_" + name for name in DYNAMIC_COUNTERS)
)
ARG: Dict[str, int] = {name: index for index, name in enumerate(ARG_SLOTS)}

#: Buffer slots whose element type is uint8 (everything else is int64).
U8_ARGS = frozenset({"crypto_pcs", "plan_cls", "btu_long", "loop_present"})

#: Compiler flags the native module passes (part of the artifact cache key).
C_FLAGS: Tuple[str, ...] = ("-O2", "-fPIC", "-shared", "-w")

_PRELUDE = """\
#include <stdint.h>
#include <string.h>

#define PI64(v) ((int64_t *)(intptr_t)(v))
#define PU8(v) ((uint8_t *)(intptr_t)(v))

static int64_t seg_find(const int64_t *buf, int64_t lo, int64_t hi,
                        int64_t needle) {
    int64_t i;
    for (i = lo; i < hi; i++) {
        if (buf[i] == needle) {
            return i;
        }
    }
    return -1;
}
"""

_INDENT = "    "


def render(body: Sequence[Stmt]) -> str:
    """Render a fully lowered C tree (no Guard/Stat nodes) into source text.

    The exact mirror of :func:`repro.engine.emit.python.render`, joining
    :meth:`~repro.engine.ir.Expr.render_c` instead of ``render`` — C's
    ``/`` and ``%`` agree with Python's on the non-negative operands these
    kernels compute with, and the fold transform has already turned
    power-of-two sites into shifts and masks anyway.
    """
    out: List[str] = []
    _walk(body, 0, out)
    return "\n".join(out) + "\n"


def _walk(body: Sequence[Stmt], depth: int, out: List[str]) -> None:
    for stmt in body:
        if isinstance(stmt, Line):
            pieces = [
                part.render_c() if isinstance(part, Expr) else part
                for part in stmt.parts
            ]
            out.append(_INDENT * depth + "".join(pieces))
        elif isinstance(stmt, Block):
            _walk(stmt.body, depth + stmt.indent, out)
        elif isinstance(stmt, (Guard, Stat)):
            raise TypeError(
                f"unlowered {type(stmt).__name__} node reached the emitter; "
                "run repro.engine.ir.lower_kernel first"
            )
        else:  # pragma: no cover - no other statement kinds exist
            raise TypeError(f"unknown IR statement {stmt!r}")


def c_kernel_source(
    spec: EnginePolicySpec,
    config: CoreConfig,
    flush_active: bool,
    icache_resident: bool = False,
    dcache_resident: bool = False,
    btu_elide: bool = False,
    collect_stats: bool = True,
) -> str:
    """The complete C translation unit for one specialization point."""
    features = KernelFeatures.derive(
        spec,
        flush_active,
        icache_resident=icache_resident,
        dcache_resident=dcache_resident,
        btu_elide=btu_elide,
        collect_stats=collect_stats,
    )
    return _PRELUDE + "\n" + render(
        lower_kernel(build_c_kernel_ir(spec, config), features)
    )


def source_digest(source: str) -> str:
    """Content digest of one generated translation unit (ABI-versioned)."""
    h = hashlib.sha256()
    h.update(f"c-kernel-abi-{C_ABI_VERSION}\n".encode())
    h.update(source.encode())
    return h.hexdigest()


# --------------------------------------------------------------------------- #
# The C kernel tree
# --------------------------------------------------------------------------- #
_C_IR_CACHE: Dict[Tuple[EnginePolicySpec, tuple], List[Stmt]] = {}


def clear_c_ir_cache() -> None:
    """Drop every cached C kernel tree (test isolation helper)."""
    _C_IR_CACHE.clear()


def _a(name: str) -> str:
    """The argument-vector access expression for one slot."""
    return f"a[{ARG[name]}]"


def build_c_kernel_ir(spec: EnginePolicySpec, config: CoreConfig) -> List[Stmt]:
    """The full native measured-pass tree for one (spec × config) pair.

    Mirrors :func:`repro.engine.ir.build_kernel_ir` stage by stage — same
    Guard/Stat placement, same constant inlining, same foldable arithmetic
    nodes — over the C data-structure mappings described in the module
    docstring.  One cached build serves all 2⁵ feature points.
    """
    key = (spec, config.identity())
    cached = _C_IR_CACHE.get(key)
    if cached is not None:
        return cached

    cassandra = spec.kind == "cassandra"
    lite = spec.lite
    traced = cassandra and not lite
    gate_mask = spec.gate_mask
    allow_fwd = spec.allow_store_forwarding
    l1i, l1d, l2, l3 = config.l1i, config.l1d, config.l2, config.l3
    rob = config.rob_size
    pht_mask = (1 << config.pht_bits) - 1
    hist_mask = (1 << config.global_history_bits) - 1
    mg_mask = 1 | gate_mask
    flag_mask = relevant_flag_mask(spec)
    # One slot beyond the store queue: the dict model goes transiently
    # overfull between insert and evict.
    sicap = config.sq_size + 1

    body: List[Stmt] = []

    # ------------------------------ prologue ------------------------------ #
    body.extend(
        lines(
            f"const int64_t n = {_a('n')};",
            f"const int64_t *pcs_col = PI64({_a('pcs')});",
            f"const int64_t *npcs_col = PI64({_a('npcs')});",
            f"const int64_t *mem_col = PI64({_a('mem')});",
            f"const int64_t *bcs_col = PI64({_a('bcs')});",
            f"const int64_t *dst_col = PI64({_a('dst')});",
            f"const int64_t *s0_col = PI64({_a('src0')});",
            f"const int64_t *s1_col = PI64({_a('src1')});",
            f"const int64_t *s2_col = PI64({_a('src2')});",
            f"const int64_t *fl_col = PI64({_a('flags')});",
            f"const int64_t *lc_col = PI64({_a('lat_cls')});",
            "static const int64_t lat_tab[5] = "
            f"{{{config.alu_latency}, {config.mul_latency}, "
            f"{config.div_latency}, {config.store_latency}, "
            f"{config.branch_resolve_latency}}};",
        )
    )
    body.append(
        Guard(
            "icache_resident",
            (),
            tuple(lines(f"int64_t *l1i = PI64({_a('l1i')});")),
        )
    )
    body.append(
        Guard(
            "dcache_resident",
            (),
            tuple(
                lines(
                    f"int64_t *l1d = PI64({_a('l1d')});",
                    f"int64_t *l2_cnt = PI64({_a('l2_cnt')});",
                    f"int64_t *l2_data = PI64({_a('l2_data')});",
                    f"int64_t *l2_occ = PI64({_a('l2_occ')});",
                    f"int64_t l2_occ_n = {_a('l2_occ_n')};",
                    f"int64_t *l3_cnt = PI64({_a('l3_cnt')});",
                    f"int64_t *l3_data = PI64({_a('l3_data')});",
                    f"int64_t *l3_occ = PI64({_a('l3_occ')});",
                    f"int64_t l3_occ_n = {_a('l3_occ_n')};",
                    "int64_t l2_line, l2_set, l2_tag, l3_line, l3_set, l3_tag;",
                    "int64_t sbase, scnt;",
                )
            ),
        )
    )
    body.extend(
        lines(
            f"int64_t *pht = PI64({_a('pht')});",
            f"int64_t history = {_a('history')};",
            f"int64_t *btb_val = PI64({_a('btb_val')});",
            f"int64_t *btb_fifo = PI64({_a('btb_fifo')});",
            f"int64_t btb_head = {_a('btb_head')};",
            f"int64_t btb_count = {_a('btb_count')};",
            f"int64_t *rsb_buf = PI64({_a('rsb_buf')});",
            f"int64_t rsb_head = {_a('rsb_head')};",
            f"int64_t rsb_len = {_a('rsb_len')};",
            f"int64_t *loop_run = PI64({_a('loop_run')});",
            f"int64_t *loop_trip = PI64({_a('loop_trip')});",
            f"int64_t *loop_conf = PI64({_a('loop_conf')});",
            f"uint8_t *loop_present = PU8({_a('loop_present')});",
            f"int64_t *loop_keys = PI64({_a('loop_keys')});",
            f"int64_t loop_n = {_a('loop_n')};",
        )
    )
    if cassandra:
        body.extend(
            lines(
                f"const uint8_t *crypto_pcs = PU8({_a('crypto_pcs')});",
                f"const int64_t crypto_pcs_len = {_a('crypto_pcs_len')};",
                f"const uint8_t *plan_cls = PU8({_a('plan_cls')});",
                "int64_t cls;",
            )
        )
        if not lite:
            body.extend(
                lines(
                    f"const int64_t *plan_stp = PI64({_a('plan_stp')});",
                    "int64_t stp;",
                )
            )
    if traced:
        body.extend(
            lines(
                f"int64_t *btu_pos = PI64({_a('btu_pos')});",
                f"const int64_t *tgt_off = PI64({_a('tgt_off')});",
                f"const int64_t *tgt_len = PI64({_a('tgt_len')});",
                f"const int64_t *tgt_data = PI64({_a('tgt_data')});",
                f"const int64_t *eid_data = PI64({_a('eid_data')});",
                f"const uint8_t *btu_long = PU8({_a('btu_long')});",
                "int64_t pos, extra, tl, tidx, target, eid;",
            )
        )
        body.append(
            Guard(
                "btu_elide",
                (),
                tuple(
                    lines(
                        f"int64_t *res_buf = PI64({_a('res_buf')});",
                        f"int64_t res_len = {_a('res_len')};",
                    )
                ),
            )
        )
    body.extend(
        lines(
            # Slot -1 is writable scratch: dst == -1 parks there, unread.
            f"int64_t *reg_ready = PI64({_a('reg_ready')}) + 1;",
            f"memset(reg_ready - 1, 0, (size_t)({_a('num_regs')} + 2)"
            " * sizeof(int64_t));",
            f"int64_t commit_ring[{rob}];",
            "memset(commit_ring, 0, sizeof commit_ring);",
            f"int64_t *ib_keys = PI64({_a('ib_keys')});",
            f"int64_t *ib_vals = PI64({_a('ib_vals')});",
            f"const int64_t ib_mask = {_a('ib_mask')};",
            "memset(ib_vals, 0, (size_t)(ib_mask + 1) * sizeof(int64_t));",
            f"int64_t si_addr[{sicap}];",
            f"int64_t si_complete[{sicap}];",
            f"int64_t si_commit[{sicap}];",
            "int64_t si_head = 0;",
            "int64_t si_len = 0;",
            "int64_t fetch_cycle = 0;",
            "int64_t fetched_this_cycle = 0;",
            "int64_t fetch_not_before = 0;",
            "int64_t last_commit_cycle = 0;",
            "int64_t committed_this_cycle = 0;",
            "int64_t window_resolve_cycle = 0;",
            "int64_t index = 0;",
            "int64_t dst, s0, s1, s2, fl, lat;",
            "int64_t pc = 0, npc, bc, ready, t, i, line, seg_end, tag;",
            "int64_t candidate, ri, bound, dispatch_cycle, exec_latency;",
            "int64_t addr, i0, q, k, h;",
            "int64_t issue_cycle, busy, ib_h, complete_cycle, commit_cycle;",
            "int64_t resolve_cycle, predicted, taken, pidx, counter;",
            "int64_t taken_pred, c, lp, redirect, stall_target, d;",
        )
    )
    body.append(
        Guard(
            "flush",
            tuple(
                lines(
                    f"const int64_t btu_flush_interval = {_a('flush_interval')};",
                    "int64_t next_btu_flush = btu_flush_interval;",
                )
            ),
        )
    )
    body.append(Guard("icache_resident", (), (stat("int64_t l1i_miss = 0;"),)))
    body.append(Guard("dcache_resident", (), (stat("int64_t l1d_miss = 0;"),)))
    if allow_fwd:
        body.append(stat("int64_t n_forwards = 0;"))
    else:
        body.append(stat("int64_t n_stl_blocked = 0;"))
    if gate_mask:
        body.append(stat("int64_t n_delayed = 0;", "int64_t delay_cycles = 0;"))
    body.append(
        stat("int64_t squash_cycles = 0;", "int64_t fetch_stall_cycles = 0;")
    )
    body.append(
        stat(
            "int64_t n_cond_mis = 0;",
            "int64_t n_rsb_mis = 0;",
            "int64_t n_ind_mis = 0;",
        )
    )
    if cassandra:
        body.append(stat("int64_t n_integrity = 0;"))
    if traced:
        body.append(
            stat("int64_t n_btu_misses = 0;", "int64_t n_btu_prefetches = 0;")
        )

    # --------------------------- stage builders ---------------------------- #
    def fetch_stage() -> List[Stmt]:
        resident = lines(
            "if (fetch_not_before > fetch_cycle) {",
            "    fetch_cycle = fetch_not_before;",
            "    fetched_this_cycle = 1;",
            f"}} else if (fetched_this_cycle >= {config.fetch_width}) {{",
            "    fetch_cycle += 1;",
            "    fetched_this_cycle = 1;",
            "} else {",
            "    fetched_this_cycle += 1;",
            "}",
        )
        assoc = l1i.associativity
        full: List[Stmt] = [
            L("pc = pcs_col[index];"),
            L(
                "candidate = fetch_cycle > fetch_not_before"
                " ? fetch_cycle : fetch_not_before;"
            ),
            L("line = ", ScaledDiv("pc", 4, l1i.line_bytes), ";"),
            L(
                "seg_end = ",
                Mod("line", l1i.num_sets),
                f" * {assoc} + {assoc};",
            ),
            L("tag = ", Div("line", l1i.num_sets), ";"),
            L(f"i = seg_find(l1i, seg_end - {assoc}, seg_end, tag);"),
            L("if (i >= 0) {"),
            L(
                "    memmove(l1i + i, l1i + i + 1,"
                " (size_t)(seg_end - 1 - i) * sizeof(int64_t));"
            ),
            L("    l1i[seg_end - 1] = tag;"),
            L("} else {"),
            Block((stat("l1i_miss += 1;"),), 1),
            L(
                f"    memmove(l1i + seg_end - {assoc},"
                f" l1i + seg_end - {assoc} + 1,"
                f" (size_t){assoc - 1} * sizeof(int64_t));"
            ),
            L("    l1i[seg_end - 1] = tag;"),
            L(f"    candidate += {l2.latency};"),
            L("}"),
        ]
        full.extend(
            lines(
                "if (candidate > fetch_cycle) {",
                "    fetch_cycle = candidate;",
                "    fetched_this_cycle = 0;",
                "}",
                f"if (fetched_this_cycle >= {config.fetch_width}) {{",
                "    fetch_cycle += 1;",
                "    fetched_this_cycle = 0;",
                "}",
                "fetched_this_cycle += 1;",
            )
        )
        return [Guard("icache_resident", tuple(resident), tuple(full))]

    def dispatch_stage(rob_active: bool) -> List[Stmt]:
        out: List[Stmt] = [L(f"ready = fetch_cycle + {config.frontend_depth};")]
        if rob_active:
            out.append(L("ri = ", Mod("index", rob, bare=True), ";"))
            out.extend(
                lines(
                    "bound = commit_ring[ri];",
                    "if (bound > ready) {",
                    "    ready = bound;",
                    "}",
                )
            )
        return out

    def operand_stage() -> List[Stmt]:
        return lines(
            "if (s0 >= 0) {",
            "    t = reg_ready[s0];",
            "    if (t > ready) {",
            "        ready = t;",
            "    }",
            "    if (s1 >= 0) {",
            "        t = reg_ready[s1];",
            "        if (t > ready) {",
            "            ready = t;",
            "        }",
            "        if (s2 >= 0) {",
            "            t = reg_ready[s2];",
            "            if (t > ready) {",
            "                ready = t;",
            "            }",
            "        }",
            "    }",
            "}",
        )

    # ------------------------ cache-model builders -------------------------- #
    d_line = ScaledDiv("addr", config.word_bytes, l1d.line_bytes)
    l2_line_src = ScaledDiv("addr", config.word_bytes, l2.line_bytes)
    l3_line_src = ScaledDiv("addr", config.word_bytes, l3.line_bytes)

    def dense_level(level: str, cfg, line_src: Expr, miss: List[Stmt]) -> List[Stmt]:
        """One dense-array cache level; ``miss`` statements run on a miss.

        Same decision tree as the python tier's sparse-dict level: create
        (journalled into the occupied-set list), hit-reorder, shift-install
        on a full set, or append — all three non-hit arms run ``miss``.
        """
        assoc = cfg.associativity
        return [
            L(f"{level}_line = ", line_src, ";"),
            L(f"{level}_set = ", Mod(f"{level}_line", cfg.num_sets), ";"),
            L(f"{level}_tag = ", Div(f"{level}_line", cfg.num_sets), ";"),
            L(f"sbase = {level}_set * {assoc};"),
            L(f"scnt = {level}_cnt[{level}_set];"),
            L("if (scnt == 0) {"),
            L(f"    {level}_cnt[{level}_set] = 1;"),
            L(f"    {level}_data[sbase] = {level}_tag;"),
            L(f"    {level}_occ[{level}_occ_n] = {level}_set;"),
            L(f"    {level}_occ_n += 1;"),
            Block(tuple(miss), 1),
            L("} else {"),
            L(
                f"    i = seg_find({level}_data, sbase, sbase + scnt,"
                f" {level}_tag);"
            ),
            L("    if (i >= 0) {"),
            L(
                f"        memmove({level}_data + i, {level}_data + i + 1,"
                " (size_t)(sbase + scnt - 1 - i) * sizeof(int64_t));"
            ),
            L(f"        {level}_data[sbase + scnt - 1] = {level}_tag;"),
            L(f"    }} else if (scnt >= {assoc}) {{"),
            L(
                f"        memmove({level}_data + sbase,"
                f" {level}_data + sbase + 1,"
                f" (size_t){assoc - 1} * sizeof(int64_t));"
            ),
            L(f"        {level}_data[sbase + {assoc - 1}] = {level}_tag;"),
            Block(tuple(miss), 2),
            L("    } else {"),
            L(f"        {level}_data[sbase + scnt] = {level}_tag;"),
            L(f"        {level}_cnt[{level}_set] = scnt + 1;"),
            Block(tuple(miss), 2),
            L("    }"),
            L("}"),
        ]

    def l2_l3_stage(load: bool) -> List[Stmt]:
        def l3_level() -> List[Stmt]:
            miss = (
                lines(f"exec_latency += {config.memory_latency};") if load else []
            )
            return dense_level("l3", l3, l3_line_src, miss)

        l2_miss: List[Stmt] = []
        if load:
            l2_miss.extend(lines(f"exec_latency += {l3.latency};"))
        l2_miss.extend(l3_level())
        return dense_level("l2", l2, l2_line_src, l2_miss)

    def l1d_stage(load: bool) -> List[Stmt]:
        resident = lines(f"exec_latency = {l1d.latency};") if load else []
        assoc = l1d.associativity
        full: List[Stmt] = [
            L("line = ", d_line, ";"),
            L(
                "seg_end = ",
                Mod("line", l1d.num_sets),
                f" * {assoc} + {assoc};",
            ),
            L("tag = ", Div("line", l1d.num_sets), ";"),
            L(f"i = seg_find(l1d, seg_end - {assoc}, seg_end, tag);"),
            L("if (i >= 0) {"),
            L(
                "    memmove(l1d + i, l1d + i + 1,"
                " (size_t)(seg_end - 1 - i) * sizeof(int64_t));"
            ),
            L("    l1d[seg_end - 1] = tag;"),
        ]
        if load:
            full.append(L(f"    exec_latency = {l1d.latency};"))
        full.append(L("} else {"))
        miss_arm: List[Stmt] = [stat("l1d_miss += 1;")]
        miss_arm.extend(
            lines(
                f"memmove(l1d + seg_end - {assoc},"
                f" l1d + seg_end - {assoc} + 1,"
                f" (size_t){assoc - 1} * sizeof(int64_t));",
                "l1d[seg_end - 1] = tag;",
            )
        )
        if load:
            miss_arm.extend(lines(f"exec_latency = {l1d.latency + l2.latency};"))
        miss_arm.extend(l2_l3_stage(load))
        full.append(Block(tuple(miss_arm), 1))
        full.append(L("}"))
        return [Guard("dcache_resident", tuple(resident), tuple(full))]

    def si_scan() -> List[Stmt]:
        """Linear store-queue probe for ``addr``: slot in ``q``, -1 absent."""
        return lines(
            "q = -1;",
            "for (k = 0; k < si_len; k++) {",
            "    h = si_head + k;",
            f"    if (h >= {sicap}) {{",
            f"        h -= {sicap};",
            "    }",
            "    if (si_addr[h] == addr) {",
            "        q = h;",
            "        break;",
            "    }",
            "}",
        )

    # --------------------------- pipeline stages ----------------------------- #
    def mem_gate_stage() -> List[Stmt]:
        out: List[Stmt] = [L(f"if (fl & {mg_mask}) {{")]
        inner: List[Stmt] = [L("if (fl & 1) {")]
        load_body: List[Stmt] = [L("addr = mem_col[index];")]
        load_body.extend(si_scan())
        load_body.extend(
            lines(
                "if (q >= 0 && si_commit[q] <= dispatch_cycle) {",
                "    q = -1;",
                "}",
            )
        )
        if allow_fwd:
            load_body.append(L("if (q >= 0) {"))
            fwd_arm: List[Stmt] = [stat("n_forwards += 1;")]
            fwd_arm.extend(
                lines(
                    "t = si_complete[q];",
                    "if (t > ready) {",
                    "    ready = t;",
                    "}",
                    f"exec_latency = {config.store_forward_latency};",
                )
            )
            load_body.append(Block(tuple(fwd_arm), 1))
            load_body.append(L("} else {"))
            load_body.append(Block(tuple(l1d_stage(load=True)), 1))
            load_body.append(L("}"))
        else:
            load_body.append(L("if (q >= 0) {"))
            stl_arm: List[Stmt] = [stat("n_stl_blocked += 1;")]
            stl_arm.extend(
                lines(
                    "t = si_commit[q];",
                    "if (t > ready) {",
                    "    ready = t;",
                    "}",
                )
            )
            load_body.append(Block(tuple(stl_arm), 1))
            load_body.append(L("}"))
            load_body.extend(l1d_stage(load=True))
        inner.append(Block(tuple(load_body), 1))
        inner.append(L("}"))
        if gate_mask:
            inner.append(
                L(f"if ((fl & {gate_mask}) && window_resolve_cycle > ready) {{")
            )
            gate_arm: List[Stmt] = [
                stat(
                    "n_delayed += 1;",
                    "delay_cycles += window_resolve_cycle - ready;",
                )
            ]
            gate_arm.extend(lines("ready = window_resolve_cycle;"))
            inner.append(Block(tuple(gate_arm), 1))
            inner.append(L("}"))
        out.append(Block(tuple(inner), 1))
        out.append(L("}"))
        return out

    def issue_commit_stage(latency: str, ring_slot: str) -> List[Stmt]:
        """Issue bandwidth, register write-back, and commit bandwidth.

        The python tier's ``issue_busy`` defaultdict becomes an open-addressed
        hash over ``ib_keys``/``ib_vals`` (count 0 ⇔ key absent, so the probe
        needs no tombstones and the per-call reset is one memset).
        """
        probe = (
            "ib_h = issue_cycle & ib_mask;",
            "while (ib_vals[ib_h] && ib_keys[ib_h] != issue_cycle) {",
            "    ib_h = (ib_h + 1) & ib_mask;",
            "}",
            "busy = ib_vals[ib_h];",
        )
        return lines(
            "issue_cycle = ready;",
            *probe,
            f"while (busy >= {config.issue_width}) {{",
            "    issue_cycle += 1;",
            *("    " + text for text in probe),
            "}",
            "ib_keys[ib_h] = issue_cycle;",
            "ib_vals[ib_h] = busy + 1;",
            f"complete_cycle = issue_cycle + {latency};",
            "reg_ready[dst] = complete_cycle;",
            "commit_cycle = complete_cycle + 1;",
            "if (commit_cycle > last_commit_cycle) {",
            "    last_commit_cycle = commit_cycle;",
            "    committed_this_cycle = 1;",
            f"}} else if (committed_this_cycle >= {config.commit_width}) {{",
            "    last_commit_cycle = commit_cycle = last_commit_cycle + 1;",
            "    committed_this_cycle = 1;",
            "} else {",
            "    commit_cycle = last_commit_cycle;",
            "    committed_this_cycle += 1;",
            "}",
            f"commit_ring[{ring_slot}] = commit_cycle;",
            "index += 1;",
        )

    def store_stage() -> List[Stmt]:
        """Store install + store-queue update under a single F_STORE test.

        The dict model updates an existing key in place (keeping its
        insertion position) and evicts the oldest key when overfull; the ring
        reproduces both: found → overwrite the slot, absent → append at the
        tail and advance the head past the oldest entry when over capacity.
        """
        inner: List[Stmt] = [L("addr = mem_col[i0];")]
        inner.extend(l1d_stage(load=False))
        inner.extend(si_scan())
        inner.extend(
            lines(
                "if (q >= 0) {",
                "    si_complete[q] = complete_cycle;",
                "    si_commit[q] = commit_cycle;",
                "} else {",
                "    h = si_head + si_len;",
                f"    if (h >= {sicap}) {{",
                f"        h -= {sicap};",
                "    }",
                "    si_addr[h] = addr;",
                "    si_complete[h] = complete_cycle;",
                "    si_commit[h] = commit_cycle;",
                "    si_len += 1;",
                f"    if (si_len > {config.sq_size}) {{",
                "        si_head += 1;",
                f"        if (si_head >= {sicap}) {{",
                f"            si_head -= {sicap};",
                "        }",
                "        si_len -= 1;",
                "    }",
                "}",
            )
        )
        return [L("if (fl & 2) {"), Block(tuple(inner), 1), L("}")]

    def btb_train() -> List[Stmt]:
        """``btb[pc] = npc`` over the dense value array + insertion ring.

        The dict evicts its oldest *current* key only when inserting a new
        one; the FIFO ring tracks exactly the live keys in insertion order
        (an overwrite of a present key moves nothing, matching dicts).
        """
        return lines(
            "if (btb_val[pc] < 0) {",
            f"    if (btb_count >= {config.btb_entries}) {{",
            "        btb_val[btb_fifo[btb_head]] = -1;",
            "        btb_head += 1;",
            f"        if (btb_head >= {config.btb_entries}) {{",
            f"            btb_head -= {config.btb_entries};",
            "        }",
            "        btb_count -= 1;",
            "    }",
            "    h = btb_head + btb_count;",
            f"    if (h >= {config.btb_entries}) {{",
            f"        h -= {config.btb_entries};",
            "    }",
            "    btb_fifo[h] = pc;",
            "    btb_count += 1;",
            "}",
            "btb_val[pc] = npc;",
        )

    def rsb_push() -> List[Stmt]:
        return lines(
            f"if (rsb_len >= {config.rsb_entries}) {{",
            "    rsb_head += 1;",
            f"    if (rsb_head >= {config.rsb_entries}) {{",
            f"        rsb_head -= {config.rsb_entries};",
            "    }",
            "    rsb_len -= 1;",
            "}",
            "h = rsb_head + rsb_len;",
            f"if (h >= {config.rsb_entries}) {{",
            f"    h -= {config.rsb_entries};",
            "}",
            "rsb_buf[h] = pc + 1;",
            "rsb_len += 1;",
        )

    def bpu_flow() -> List[Stmt]:
        """Inline BPU predict+update (flat state); leaves ``predicted``."""
        out: List[Stmt] = [L("taken = fl & 64;")]  # F_TAKEN
        # B_COND — by far the most frequent class.
        out.extend(
            lines(
                "if (bc == 1) {",
                f"    pidx = (pc ^ history) & {pht_mask};",
                "    counter = pht[pidx];",
                "    lp = loop_present[pc];",
                "    if (lp && loop_conf[pc] >= 2 && loop_trip[pc] >= 0) {",
                "        taken_pred = loop_run[pc] >= loop_trip[pc];",
                "    } else {",
                "        taken_pred = counter >= 2;",
                "    }",
                "    if (taken_pred) {",
                "        predicted = btb_val[pc];",
                "        if (predicted < 0) {",
                "            predicted = pc + 1;",
                "        }",
                "    } else {",
                "        predicted = pc + 1;",
                "    }",
                # The reference updates the PHT, then the history, then the
                # loop entry; both taken arms preserve that order.  New loop
                # entries are journalled for the session unpack.
                "    if (!lp) {",
                "        loop_present[pc] = 1;",
                "        loop_run[pc] = 0;",
                "        loop_trip[pc] = -1;",
                "        loop_conf[pc] = 0;",
                "        loop_keys[loop_n] = pc;",
                "        loop_n += 1;",
                "    }",
                "    if (taken) {",
                "        pht[pidx] = counter < 3 ? counter + 1 : 3;",
                f"        history = ((history << 1) | 1) & {hist_mask};",
                "        if (loop_trip[pc] == loop_run[pc]) {",
                "            c = loop_conf[pc];",
                "            loop_conf[pc] = c < 7 ? c + 1 : 7;",
                "        } else {",
                "            loop_conf[pc] = 0;",
                "            loop_trip[pc] = loop_run[pc];",
                "        }",
                "        loop_run[pc] = 0;",
            )
        )
        out.append(Block(tuple(btb_train()), 2))
        out.extend(
            lines(
                "    } else {",
                "        pht[pidx] = counter > 0 ? counter - 1 : 0;",
                f"        history = (history << 1) & {hist_mask};",
                "        loop_run[pc] += 1;",
                "    }",
            )
        )
        out.append(
            stat(
                "if (predicted != npc) {",
                "    n_cond_mis += 1;",
                "}",
            )
        )
        # B_JMP / B_CALL — direct targets, always correct.
        out.extend(
            lines(
                "} else if (bc == 2) {",
                "    predicted = npc;",
                "} else if (bc == 3) {",
            )
        )
        out.append(Block(tuple(rsb_push()), 1))
        out.extend(
            lines(
                "    predicted = npc;",
                # B_RET — pop the RSB.
                "} else if (bc == 6) {",
                "    if (rsb_len > 0) {",
                "        rsb_len -= 1;",
                "        h = rsb_head + rsb_len;",
                f"        if (h >= {config.rsb_entries}) {{",
                f"            h -= {config.rsb_entries};",
                "        }",
                "        predicted = rsb_buf[h];",
                "    } else {",
                "        predicted = pc + 1;",
                "    }",
            )
        )
        out.append(
            stat(
                "if (predicted != npc) {",
                "    n_rsb_mis += 1;",
                "}",
            )
        )
        # B_CALLI — BTB lookup, RSB push, then BTB training.
        out.extend(
            lines(
                "} else if (bc == 4) {",
                "    predicted = btb_val[pc];",
            )
        )
        out.append(Block(tuple(rsb_push()), 1))
        out.extend(
            lines(
                "    if (predicted < 0) {",
                "        predicted = pc + 1;",
                "    }",
            )
        )
        out.append(Block(tuple(btb_train()), 1))
        out.append(
            stat(
                "if (predicted != npc) {",
                "    n_ind_mis += 1;",
                "}",
            )
        )
        # B_JMPI — BTB lookup + training.
        out.extend(
            lines(
                "} else if (bc == 5) {",
                "    predicted = btb_val[pc];",
                "    if (predicted < 0) {",
                "        predicted = pc + 1;",
                "    }",
            )
        )
        out.append(Block(tuple(btb_train()), 1))
        out.append(
            stat(
                "if (predicted != npc) {",
                "    n_ind_mis += 1;",
                "}",
            )
        )
        out.extend(
            lines(
                "} else {",
                "    predicted = pc + 1;",
                "}",
            )
        )
        return out

    def bpu_outcome() -> List[Stmt]:
        """Mispredict redirect + speculation-window bookkeeping."""
        out: List[Stmt] = lines(
            "if (predicted != npc) {",
            f"    redirect = resolve_cycle + {config.mispredict_penalty};",
        )
        out.append(
            stat(
                "    d = redirect - fetch_cycle;",
                "    if (d > 0) {",
                "        squash_cycles += d;",
                "    }",
            )
        )
        out.extend(
            lines(
                "    if (redirect > fetch_not_before) {",
                "        fetch_not_before = redirect;",
                "    }",
                "}",
                "if (resolve_cycle > window_resolve_cycle) {",
                "    window_resolve_cycle = resolve_cycle;",
                "}",
            )
        )
        return out

    def fetch_stall() -> List[Stmt]:
        out: List[Stmt] = [L("stall_target = resolve_cycle + 1;")]
        out.append(
            stat(
                "d = stall_target - fetch_cycle;",
                "if (d > 0) {",
                "    fetch_stall_cycles += d;",
                "}",
            )
        )
        out.extend(
            lines(
                "if (stall_target > fetch_not_before) {",
                "    fetch_not_before = stall_target;",
                "}",
            )
        )
        return out

    def branch_stage() -> List[Stmt]:
        base: List[Stmt] = []
        base.append(
            Guard("icache_resident", tuple(lines("pc = pcs_col[i0];")), ())
        )
        base.extend(
            lines(
                "npc = npcs_col[i0];",
                "bc = bcs_col[i0];",
                "resolve_cycle = complete_cycle;",
            )
        )
        if not cassandra:
            base.extend(bpu_flow())
            base.extend(bpu_outcome())
            return [L("if (fl & 4) {"), Block(tuple(base), 1), L("}")]  # F_BRANCH
        # The fetch-flow class is a static per-PC property, resolved by the
        # batch layer into ``plan_cls``.
        base.extend(
            lines(
                "cls = plan_cls[pc];",
                "if (cls == 0) {",
            )
        )
        bpu_arm: List[Stmt] = list(bpu_flow())
        bpu_arm.append(
            L(
                "if ((predicted < crypto_pcs_len && crypto_pcs[predicted])"
                " || crypto_pcs[npc]) {"
            )
        )
        integrity_arm: List[Stmt] = [stat("n_integrity += 2;")]
        integrity_arm.extend(fetch_stall())
        bpu_arm.append(Block(tuple(integrity_arm), 1))
        bpu_arm.append(L("} else {"))
        bpu_arm.append(Block(tuple(bpu_outcome()), 1))
        bpu_arm.append(L("}"))
        base.append(Block(tuple(bpu_arm), 1))
        base.append(L("} else if (cls == 1) {"))
        if not lite:
            base.append(
                Block(
                    tuple(
                        lines(
                            "stp = plan_stp[pc];",
                            "if (stp >= 0 && stp != npc) {",
                            f"    {_a('err_a')} = pc;",
                            f"    {_a('err_b')} = stp;",
                            f"    {_a('err_c')} = npc;",
                            "    return 1;",
                            "}",
                        )
                    ),
                    1,
                )
            )
        if traced:
            # No eviction is possible under elision and no flush is active,
            # so "replay position advanced" is the whole residency model.
            elide_arm: List[Stmt] = lines(
                "} else if (cls == 2) {",
                "    pos = btu_pos[pc];",
                "    if (pos) {",
                "        extra = 0;",
                "    } else {",
            )
            elide_arm.append(Block((stat("n_btu_misses += 1;"),), 2))
            elide_arm.append(
                Block(tuple(lines(f"extra = {config.btu.miss_latency};")), 2)
            )
            elide_arm.append(L("    }"))
            # Full residency model over the session-owned LRU buffer.
            full_arm: List[Stmt] = lines(
                "} else if (cls == 2) {",
                "    extra = 0;",
                "    i = seg_find(res_buf, 0, res_len, pc);",
                "    if (i >= 0) {",
                "        memmove(res_buf + i, res_buf + i + 1,"
                " (size_t)(res_len - 1 - i) * sizeof(int64_t));",
                "        res_buf[res_len - 1] = pc;",
                "    } else {",
            )
            full_arm.append(Block((stat("n_btu_misses += 1;"),), 2))
            full_arm.append(
                Block(
                    tuple(
                        lines(
                            f"extra = {config.btu.miss_latency};",
                            f"if (res_len >= {config.btu.entries}) {{",
                            "    memmove(res_buf, res_buf + 1,"
                            " (size_t)(res_len - 1) * sizeof(int64_t));",
                            "    res_len -= 1;",
                            "}",
                            "res_buf[res_len] = pc;",
                            "res_len += 1;",
                        )
                    ),
                    2,
                )
            )
            full_arm.append(L("    }"))
            full_arm.append(Block(tuple(lines("pos = btu_pos[pc];")), 1))
            base.append(Guard("btu_elide", tuple(elide_arm), tuple(full_arm)))
            epe = config.btu.elements_per_entry
            replay: List[Stmt] = lines(
                "tl = tgt_len[pc];",
                "tidx = pos % tl;",
                "target = tgt_data[tgt_off[pc] + tidx];",
                "btu_pos[pc] = pos + 1;",
                "if (btu_long[pc]) {",
                "    eid = eid_data[tgt_off[pc] + tidx];",
            )
            replay.append(
                L(f"    if (eid >= {epe} && ", Mod("eid", epe), " == 0) {")
            )
            replay.append(Block((stat("n_btu_prefetches += 1;"),), 2))
            replay.extend(
                lines(
                    f"        extra += {config.btu.prefetch_latency};",
                    "    }",
                    "}",
                    "if (target != npc) {",
                    f"    {_a('err_a')} = pc;",
                    f"    {_a('err_b')} = target;",
                    f"    {_a('err_c')} = npc;",
                    "    return 2;",
                    "}",
                    "if (extra) {",
                    "    t = fetch_cycle + extra;",
                    "    if (t > fetch_not_before) {",
                    "        fetch_not_before = t;",
                    "    }",
                    "}",
                )
            )
            base.append(Block(tuple(replay), 1))
        base.append(L("} else {"))
        base.append(Block(tuple(fetch_stall()), 1))
        base.append(L("}"))
        return [L("if (fl & 4) {"), Block(tuple(base), 1), L("}")]  # F_BRANCH

    # -------------------------- instruction body ---------------------------- #
    def instruction_body(rob_active: bool) -> List[Stmt]:
        ring_slot = "ri" if rob_active else "index"
        out: List[Stmt] = []
        out.extend(fetch_stage())
        out.extend(dispatch_stage(rob_active))
        out.append(L("if (fl) {"))
        slow: List[Stmt] = [L("dispatch_cycle = ready;")]
        slow.extend(operand_stage())
        slow.append(L("exec_latency = lat;"))
        slow.extend(mem_gate_stage())
        slow.append(L("i0 = index;"))
        slow.extend(issue_commit_stage("exec_latency", ring_slot))
        slow.extend(store_stage())
        slow.extend(branch_stage())
        out.append(Block(tuple(slow), 1))
        out.append(L("} else {"))
        fast: List[Stmt] = list(operand_stage())
        fast.extend(issue_commit_stage("lat", ring_slot))
        out.append(Block(tuple(fast), 1))
        out.append(L("}"))
        out.append(
            Guard(
                "flush",
                tuple(
                    lines(
                        "if (last_commit_cycle >= next_btu_flush) {",
                        "    res_len = 0;",
                        "    next_btu_flush += btu_flush_interval;",
                        "}",
                    )
                ),
            )
        )
        return out

    def row_loads() -> List[Stmt]:
        return lines(
            "dst = dst_col[index];",
            "s0 = s0_col[index];",
            "s1 = s1_col[index];",
            "s2 = s2_col[index];",
            f"fl = fl_col[index] & {flag_mask};",
            "lat = lat_tab[lc_col[index]];",
        )

    # The head loop needs no ROB-occupancy bound (nothing has committed
    # ``rob_size`` back yet); the tail reads it unconditionally.  ``fl`` is
    # the premasked flags word: zero means "pure ALU work", the fast path.
    body.append(L(f"const int64_t head_end = n < {rob} ? n : {rob};"))
    body.append(L("while (index < head_end) {"))
    body.append(
        Block(tuple(row_loads() + instruction_body(rob_active=False)), 1)
    )
    body.append(L("}"))
    body.append(L("while (index < n) {"))
    body.append(
        Block(tuple(row_loads() + instruction_body(rob_active=True)), 1)
    )
    body.append(L("}"))

    # ------------------------------ epilogue -------------------------------- #
    # Session-persistent scalars go back unconditionally so warm passes chain
    # into the measured pass without a Python-side round trip.
    body.extend(
        lines(
            f"{_a('history')} = history;",
            f"{_a('btb_head')} = btb_head;",
            f"{_a('btb_count')} = btb_count;",
            f"{_a('rsb_head')} = rsb_head;",
            f"{_a('rsb_len')} = rsb_len;",
            f"{_a('loop_n')} = loop_n;",
        )
    )
    if traced:
        body.append(
            Guard(
                "btu_elide",
                (),
                tuple(lines(f"{_a('res_len')} = res_len;")),
            )
        )
    body.append(
        Guard(
            "dcache_resident",
            (),
            tuple(
                lines(
                    f"{_a('l2_occ_n')} = l2_occ_n;",
                    f"{_a('l3_occ_n')} = l3_occ_n;",
                )
            ),
        )
    )

    def counter_set(name: str, value: str) -> Line:
        return L(f"{_a('counter_' + name)} = {value};")

    return_block: List[Stmt] = []
    return_block.append(counter_set("cycles", "last_commit_cycle"))
    return_block.append(
        counter_set("store_forwards", "n_forwards" if allow_fwd else "0")
    )
    return_block.append(
        counter_set("stl_blocked", "0" if allow_fwd else "n_stl_blocked")
    )
    return_block.append(
        counter_set("delayed_instructions", "n_delayed" if gate_mask else "0")
    )
    return_block.append(
        counter_set("delay_cycles", "delay_cycles" if gate_mask else "0")
    )
    return_block.append(counter_set("squash_cycles", "squash_cycles"))
    return_block.append(
        counter_set("fetch_stall_cycles", "fetch_stall_cycles")
    )
    return_block.append(
        counter_set(
            "integrity_stall_branches", "n_integrity" if cassandra else "0"
        )
    )
    return_block.append(
        counter_set("btu_misses", "n_btu_misses" if traced else "0")
    )
    return_block.append(
        counter_set("btu_prefetches", "n_btu_prefetches" if traced else "0")
    )
    return_block.append(
        counter_set("bpu_mispredicted", "n_cond_mis + n_rsb_mis + n_ind_mis")
    )
    return_block.append(
        Guard(
            "icache_resident",
            (counter_set("l1i_miss", "0"),),
            (counter_set("l1i_miss", "l1i_miss"),),
        )
    )
    return_block.append(
        Guard(
            "dcache_resident",
            (counter_set("l1d_miss", "0"),),
            (counter_set("l1d_miss", "l1d_miss"),),
        )
    )
    # Occupancy = branches looked up and never evicted/flushed; in the
    # elided variant that is exactly "replay position advanced".
    if traced:
        occ_elide: List[Stmt] = lines(
            f"const int64_t *traced_pcs = PI64({_a('traced_pcs')});",
            f"const int64_t n_traced = {_a('n_traced')};",
            "t = 0;",
            "for (k = 0; k < n_traced; k++) {",
            "    if (btu_pos[traced_pcs[k]]) {",
            "        t += 1;",
            "    }",
            "}",
        )
        occ_elide.append(counter_set("btu_occupancy", "t"))
        return_block.append(
            Guard(
                "btu_elide",
                tuple(occ_elide),
                (counter_set("btu_occupancy", "res_len"),),
            )
        )
    else:
        return_block.append(counter_set("btu_occupancy", "0"))
    body.append(Guard("stats", tuple(return_block)))
    body.append(L("return 0;"))

    tree: List[Stmt] = [
        L("int64_t kernel(int64_t *a) {"),
        Block(tuple(body), 1),
        L("}"),
    ]
    _C_IR_CACHE[key] = tree
    return tree
