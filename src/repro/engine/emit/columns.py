"""The NumPy columns emitter: one trace walk times a whole config cohort.

The python emitter specializes *per config* and pays CPython's interpreter
loop per (config × instruction).  Sweeps invert the economics: the quick
suite times the same workload under dozens of :class:`CoreConfig` variants
whose traces — and, under the residency proofs, whose warm predictor
contents — are identical.  This emitter walks the trace **once** and keeps
every per-config pipeline scalar as a ``(K,)`` int64 vector (fetch cycle,
ready times, commit bandwidth state, the PHT...), so the marginal cost of
config ``K+1`` is one lane in a NumPy op instead of a full interpreter
pass.  All arithmetic is exact int64 — the parity contract extends the
chain one layer up::

    emit.columns  ≡  emit.python kernels  ≡  run_trace  ≡  run_reference

bit-for-bit (``tests/engine/test_columns_parity.py``).

A cohort is only eligible when the vector walk is provably exact:

* every config holds the I-cache and D-cache residency proofs with at
  least one warm-up pass, so no cache model (and no per-config cache
  state) exists at all;
* no BTU flush interval (flush timing is per-config and clears shared
  residency), and a traced (non-lite Cassandra) spec must hold the BTU
  no-eviction elision proof in every config;
* the BTB never evicts and the RSB never overflows for any config across
  warm-up and measured passes (:func:`btb_update_pcs`,
  :func:`rsb_max_depth`) — then the BTB/RSB/loop-predictor/BTU-position
  state is driven purely by scalar branch outcomes and is *identical
  across the cohort*, so one shared Python structure serves all K lanes;
* one store-queue size across the cohort, so the queue's membership
  sequence — insertion-ordered and timing-independent — can be resolved
  into a per-load candidate store before the walk
  (:func:`store_candidates`).

Everything timing-dependent stays vectorized; everything the proofs make
scalar stays a plain Python structure.  Per-config divergence that
survives (PHT counters and history, issue/commit bandwidth, ROB bounds,
store timing, gate delays, BTU miss/prefetch latencies) is exactly what a
sweep is trying to measure.

NumPy is an optional extra (``pip install repro-cassandra[columns]``):
when it is absent :func:`columns_available` is False and the batch layer
silently stays on python kernels, point by point.

The per-row cost is ~15–25 NumPy ops regardless of K, so the tier only
wins for cohorts big enough to amortize dispatch — the batch layer gates
on ``REPRO_ENGINE_COLUMNS_MIN`` configs (default
:data:`DEFAULT_MIN_COHORT`) and falls back to python kernels below it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.engine.kernels import relevant_flag_mask
from repro.engine.lowering import LoweredTrace
from repro.engine.state import FlatState
from repro.uarch.config import CoreConfig
from repro.uarch.defenses.base import EnginePolicySpec
from repro.uarch.defenses.cassandra import ReplayMismatchError

try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]

#: Minimum cohort size (distinct configs) for the columns tier to engage.
COLUMNS_MIN_ENV = "REPRO_ENGINE_COLUMNS_MIN"
DEFAULT_MIN_COHORT = 64


def columns_available() -> bool:
    """Whether the columns tier can run at all (NumPy importable)."""
    return _np is not None


# --------------------------------------------------------------------------- #
# Scalar pre-passes: the proofs that make shared state exact
# --------------------------------------------------------------------------- #
def btb_update_pcs(
    trace: LoweredTrace, plan_cls: bytes, cassandra: bool
) -> Set[int]:
    """Every static PC that writes the BTB during a pass.

    Conditional branches train the BTB only when taken; indirect
    calls/jumps always train.  Under a Cassandra-kind spec only class-0
    (non-crypto) branches reach the BPU flow at all.  If this set fits
    ``btb_entries``, the BTB can never evict and its contents are a pure
    function of the scalar outcome stream — identical for every config.
    """
    pcs, flags, bcs = trace.pcs, trace.flags, trace.bclass
    update: Set[int] = set()
    for i, fl in enumerate(flags):
        if not fl & 4:  # F_BRANCH
            continue
        pc = pcs[i]
        if cassandra and plan_cls[pc] != 0:
            continue
        bc = bcs[i]
        if bc in (4, 5) or (bc == 1 and fl & 64):  # B_CALLI/B_JMPI, taken B_COND
            update.add(pc)
    return update


def rsb_max_depth(
    trace: LoweredTrace, plan_cls: bytes, cassandra: bool, runs: int
) -> int:
    """Peak RSB depth over ``runs`` consecutive passes of the trace.

    The RSB persists across warm-up passes, so unmatched calls accumulate;
    simulating exactly the passes that will run bounds the true peak.  If
    it never exceeds ``rsb_entries``, the overflow drop is dead code and
    the RSB contents are scalar-identical across configs.
    """
    pcs, flags, bcs = trace.pcs, trace.flags, trace.bclass
    events: List[int] = []  # +1 push, -1 pop
    for i, fl in enumerate(flags):
        if not fl & 4:
            continue
        if cassandra and plan_cls[pcs[i]] != 0:
            continue
        bc = bcs[i]
        if bc in (3, 4):  # B_CALL / B_CALLI push a return address
            events.append(1)
        elif bc == 6:  # B_RET pops (a pop on empty predicts pc + 1)
            events.append(-1)
    depth = peak = 0
    for _ in range(max(runs, 1)):
        for ev in events:
            if ev > 0:
                depth += 1
                if depth > peak:
                    peak = depth
            elif depth:
                depth -= 1
    return peak


def store_candidates(
    trace: LoweredTrace, sq_size: int
) -> Tuple[Dict[int, int], Set[int]]:
    """Resolve each load's in-flight-store candidate before the walk.

    The store queue is an insertion-ordered dict: a store re-assigning an
    existing address keeps its queue position, and overflow evicts the
    oldest *insertion*.  Membership therefore depends only on the scalar
    store sequence and ``sq_size`` — never on timing — so each load row
    maps to at most one candidate store row; only the timing test
    (``commit > dispatch``) remains per-config at run time.  Returns the
    load→store map and the set of store rows some load can observe.
    """
    mem, flags = trace.mem, trace.flags
    queue: Dict[int, int] = {}  # addr -> most recent store row, insertion-ordered
    cand: Dict[int, int] = {}
    needed: Set[int] = set()
    for i, fl in enumerate(flags):
        if fl & 1:  # F_LOAD
            row = queue.get(mem[i], -1)
            if row >= 0:
                cand[i] = row
                needed.add(row)
        elif fl & 2:  # F_STORE
            addr = mem[i]
            if addr in queue:
                queue[addr] = i
            else:
                queue[addr] = i
                if len(queue) > sq_size:
                    del queue[next(iter(queue))]
    return cand, needed


# --------------------------------------------------------------------------- #
# The vectorized walk
# --------------------------------------------------------------------------- #
def run_cohort(
    trace: LoweredTrace,
    spec: EnginePolicySpec,
    configs: Sequence[CoreConfig],
    states: Sequence[FlatState],
    crypto_pcs: bytes,
    plan_cls: bytes,
    plan_stp: Dict[int, int],
) -> List[Dict[str, int]]:
    """One trace walk over K warmed configs; per-config kernel counters.

    ``states`` are the per-config warmed :class:`FlatState`s (the same
    ones the python kernels would start from).  The scalar-shared
    structures (BTB, RSB, loop predictor, BTU positions) are taken from
    ``states[0]`` — the caller's eligibility proofs guarantee they are
    identical across the cohort.  Returns one dict per config matching
    the generated kernels' return contract exactly.
    """
    if _np is None:  # pragma: no cover - guarded by columns_available()
        raise RuntimeError("NumPy is not available; columns tier cannot run")
    np = _np
    i64 = np.int64

    K = len(configs)
    kar = np.arange(K)
    cassandra = spec.kind == "cassandra"
    lite = spec.lite
    traced = cassandra and not lite
    gate_mask = spec.gate_mask
    allow_fwd = spec.allow_store_forwarding
    mask = relevant_flag_mask(spec)

    def cvec(get) -> "np.ndarray":
        return np.fromiter((get(c) for c in configs), dtype=i64, count=K)

    fw_vec = cvec(lambda c: c.fetch_width)
    fd_vec = cvec(lambda c: c.frontend_depth)
    iw_vec = cvec(lambda c: c.issue_width)
    cw_vec = cvec(lambda c: c.commit_width)
    rob_vec = cvec(lambda c: c.rob_size)
    pht_mask = cvec(lambda c: (1 << c.pht_bits) - 1)
    hist_mask = cvec(lambda c: (1 << c.global_history_bits) - 1)
    sfl_vec = cvec(lambda c: c.store_forward_latency)
    pen_vec = cvec(lambda c: c.mispredict_penalty)
    l1d_lat = cvec(lambda c: c.l1d.latency)
    if traced:
        miss_lat = cvec(lambda c: c.btu.miss_latency)
        pf_lat = cvec(lambda c: c.btu.prefetch_latency)
        epe_vec = cvec(lambda c: c.btu.elements_per_entry)

    # Resolved latencies: one (K,) row per latency class, indexed per row.
    lat_rows = [
        cvec(lambda c, j=j: (
            c.alu_latency,
            c.mul_latency,
            c.div_latency,
            c.store_latency,
            c.branch_resolve_latency,
        )[j])
        for j in range(5)
    ]

    # ----------------------- per-config vector state ----------------------- #
    max_pht = max(len(s.pht) for s in states)
    pht = np.zeros((K, max_pht), dtype=i64)
    for k, s in enumerate(states):
        pht[k, : len(s.pht)] = s.pht
    history = np.fromiter((s.history for s in states), dtype=i64, count=K)

    reg_ready = np.zeros((trace.num_regs + 1, K), dtype=i64)
    max_rob = int(rob_vec.max())
    ring = np.zeros((K, max_rob), dtype=i64)
    slot = np.zeros(K, dtype=i64)  # index % rob, maintained incrementally
    fc = np.zeros(K, dtype=i64)  # fetch_cycle
    ftc = np.zeros(K, dtype=i64)  # fetched_this_cycle
    fnb = np.zeros(K, dtype=i64)  # fetch_not_before
    lc = np.zeros(K, dtype=i64)  # last_commit_cycle
    ctc = np.zeros(K, dtype=i64)  # committed_this_cycle
    wrc = np.zeros(K, dtype=i64)  # window_resolve_cycle
    busy_cap = 4096
    busy = np.zeros((K, busy_cap), dtype=i64)

    # Dynamic counters, one lane per config.
    nf = np.zeros(K, dtype=i64)  # store forwards
    nstl = np.zeros(K, dtype=i64)  # STL blocked
    nd = np.zeros(K, dtype=i64)  # gate-delayed instructions
    dcyc = np.zeros(K, dtype=i64)  # gate delay cycles
    sq = np.zeros(K, dtype=i64)  # squash cycles
    fsc = np.zeros(K, dtype=i64)  # fetch stall cycles
    ni = np.zeros(K, dtype=i64)  # integrity stall branches
    nbm = np.zeros(K, dtype=i64)  # BTU misses
    nbp = np.zeros(K, dtype=i64)  # BTU prefetches
    ncm = np.zeros(K, dtype=i64)  # conditional mispredicts
    nrm = np.zeros(K, dtype=i64)  # return mispredicts
    nim = np.zeros(K, dtype=i64)  # indirect mispredicts

    # -------------------- scalar (proof-shared) state ---------------------- #
    btb = dict(states[0].btb)
    rsb = list(states[0].rsb)
    loops = {pc: list(row) for pc, row in states[0].loops.items()}
    btb_get = btb.get
    loops_get = loops.get
    if traced:
        btu_pos = dict(states[0].btu_pos)
        btu_targets = states[0].btu_targets
        btu_eids = states[0].btu_eids
        btu_long = states[0].btu_long

    crypto_arr = (
        np.frombuffer(crypto_pcs, dtype=np.uint8) if cassandra else None
    )
    cplen = len(crypto_pcs)

    cand, needed_rows = store_candidates(trace, configs[0].sq_size)
    cand_get = cand.get
    store_vals: Dict[int, Tuple["np.ndarray", "np.ndarray"]] = {}

    # Hot columns as locals.
    pcs_col = trace.pcs
    npcs_col = trace.next_pcs
    bcs_col = trace.bclass
    mem_col = trace.mem
    lat_cls = trace.lat_class
    dst_col = trace.dst
    s0_col = trace.src0
    s1_col = trace.src1
    s2_col = trace.src2
    fl_col = [f & mask for f in trace.flags]

    maximum = np.maximum
    where = np.where

    def issue_commit(ready: "np.ndarray", lat: "np.ndarray", dst: int):
        """Issue-bandwidth probe + commit bandwidth; returns (complete, commit)."""
        nonlocal lc, ctc, slot, busy, busy_cap
        icyc = ready.copy()
        while True:
            hi = int(icyc.max())
            if hi >= busy_cap:
                grow = max(busy_cap, hi + 1 - busy_cap)
                busy = np.concatenate(
                    [busy, np.zeros((K, grow), dtype=i64)], axis=1
                )
                busy_cap += grow
            b = busy[kar, icyc]
            over = b >= iw_vec
            if not over.any():
                break
            icyc += over
        busy[kar, icyc] = b + 1
        complete = icyc + lat
        reg_ready[dst] = complete
        commit = complete + 1
        gt = commit > lc
        bump = (~gt) & (ctc >= cw_vec)
        lc = where(gt, commit, lc + bump)
        ctc = where(gt | bump, 1, ctc + 1)
        # In every arm the final commit cycle equals the updated
        # last_commit_cycle (greater: it set it; bandwidth bump: it was
        # advanced to it; else: it shares it).
        ring[kar, slot] = lc
        slot += 1
        slot[slot == rob_vec] = 0
        return complete, lc

    def merge_operands(ready: "np.ndarray", s0: int, s1: int, s2: int) -> None:
        if s0 >= 0:
            maximum(ready, reg_ready[s0], out=ready)
            if s1 >= 0:
                maximum(ready, reg_ready[s1], out=ready)
                if s2 >= 0:
                    maximum(ready, reg_ready[s2], out=ready)

    def fetch_stall_all(resolve: "np.ndarray") -> None:
        nonlocal fsc
        stall = resolve + 1
        d = stall - fc
        fsc += maximum(d, 0)
        maximum(fnb, stall, out=fnb)

    def bpu_outcome(pred, npc: int, resolve: "np.ndarray") -> None:
        """Mispredict redirect + speculation window (unmasked variant)."""
        nonlocal sq, fnb
        if isinstance(pred, int):
            if pred != npc:
                redirect = resolve + pen_vec
                sq += maximum(redirect - fc, 0)
                maximum(fnb, redirect, out=fnb)
        else:
            mis = pred != npc
            if mis.any():
                redirect = resolve + pen_vec
                d = redirect - fc
                sq += where(mis & (d > 0), d, 0)
                fnb = where(mis, maximum(fnb, redirect), fnb)
        maximum(wrc, resolve, out=wrc)

    def bpu_flow(pc: int, npc: int, bc: int, taken: int):
        """Inline BPU predict+update; returns ``predicted`` (int or (K,))."""
        nonlocal history, ncm, nrm, nim
        if bc == 1:  # B_COND
            pidx = (pc ^ history) & pht_mask
            counter = pht[kar, pidx]
            loop = loops_get(pc)
            if loop is not None and loop[2] >= 2 and loop[1] >= 0:
                # Loop-predictor override: pure scalar state, one prediction
                # for every lane.
                if loop[0] >= loop[1]:
                    tgt = btb_get(pc, -1)
                    pred = tgt if tgt >= 0 else pc + 1
                else:
                    pred = pc + 1
            else:
                tgt = btb_get(pc, -1)
                tgt = tgt if tgt >= 0 else pc + 1
                pred = where(counter >= 2, tgt, pc + 1)
            if loop is None:
                loop = loops[pc] = [0, -1, 0]
            if taken:
                pht[kar, pidx] = np.minimum(counter + 1, 3)
                history = ((history << 1) | 1) & hist_mask
                if loop[1] == loop[0]:
                    c = loop[2]
                    loop[2] = c + 1 if c < 7 else 7
                else:
                    loop[2] = 0
                    loop[1] = loop[0]
                loop[0] = 0
                btb[pc] = npc  # no-eviction proof: the capacity drop is dead
            else:
                pht[kar, pidx] = maximum(counter - 1, 0)
                history = (history << 1) & hist_mask
                loop[0] += 1
            ncm += pred != npc
            return pred
        if bc == 2:  # B_JMP
            return npc
        if bc == 3:  # B_CALL (no-overflow proof: the RSB drop is dead)
            rsb.append(pc + 1)
            return npc
        if bc == 6:  # B_RET
            pred = rsb.pop() if rsb else pc + 1
            nrm += pred != npc
            return pred
        if bc == 4:  # B_CALLI
            tgt = btb_get(pc, -1)
            rsb.append(pc + 1)
            pred = tgt if tgt >= 0 else pc + 1
            btb[pc] = npc
            nim += pred != npc
            return pred
        if bc == 5:  # B_JMPI
            tgt = btb_get(pc, -1)
            pred = tgt if tgt >= 0 else pc + 1
            btb[pc] = npc
            nim += pred != npc
            return pred
        return pc + 1

    def integrity_split(pred, npc: int, resolve: "np.ndarray") -> None:
        """Cassandra class-0 epilogue: integrity stall vs normal outcome.

        The stall decision reads the *predicted* PC, which is per-lane when
        the PHT decides — so the two arms can both be live, masked.  The
        speculation window only advances in the non-stall arm.
        """
        nonlocal ni, fsc, sq, fnb, wrc
        npc_crypto = bool(crypto_arr[npc])
        if isinstance(pred, int):
            if npc_crypto or (pred < cplen and crypto_arr[pred]):
                ni += 2
                fetch_stall_all(resolve)
            else:
                bpu_outcome(pred, npc, resolve)
            return
        if npc_crypto:
            ni += 2
            fetch_stall_all(resolve)
            return
        inr = pred < cplen
        ist = (crypto_arr[where(inr, pred, 0)] != 0) & inr
        if not ist.any():
            bpu_outcome(pred, npc, resolve)
            return
        ni += 2 * ist
        stall = resolve + 1
        d = stall - fc
        fsc += where(ist & (d > 0), d, 0)
        fnb = where(ist, maximum(fnb, stall), fnb)
        not_ist = ~ist
        mis = (pred != npc) & not_ist
        if mis.any():
            redirect = resolve + pen_vec
            d2 = redirect - fc
            sq += where(mis & (d2 > 0), d2, 0)
            fnb = where(mis, maximum(fnb, redirect), fnb)
        wrc = where(not_ist, maximum(wrc, resolve), wrc)

    # ------------------------------ the walk ------------------------------- #
    for index in range(trace.n):
        # Fetch (residency-proved: pure width bookkeeping).
        m1 = fnb > fc
        m2 = (~m1) & (ftc >= fw_vec)
        fc = where(m1, fnb, fc + m2)
        ftc = where(m1 | m2, 1, ftc + 1)
        # Dispatch: frontend depth, bounded by ROB occupancy (untouched ring
        # slots read 0, which reproduces the kernels' unbounded head loop).
        ready = fc + fd_vec
        maximum(ready, ring[kar, slot], out=ready)

        fl = fl_col[index]
        if fl:
            dispatch_cycle = ready.copy() if fl & 1 else None
            merge_operands(ready, s0_col[index], s1_col[index], s2_col[index])
            if fl & 1:  # F_LOAD (residency-proved L1D)
                row = cand_get(index, -1)
                if row < 0:
                    exec_lat = l1d_lat
                else:
                    s_complete, s_commit = store_vals[row]
                    infl = s_commit > dispatch_cycle
                    if allow_fwd:
                        nf += infl
                        ready = where(infl, maximum(ready, s_complete), ready)
                        exec_lat = where(infl, sfl_vec, l1d_lat)
                    else:
                        nstl += infl
                        ready = where(infl, maximum(ready, s_commit), ready)
                        exec_lat = l1d_lat
            else:
                exec_lat = lat_rows[lat_cls[index]]
            if gate_mask and fl & gate_mask:
                g = wrc > ready
                nd += g
                dcyc += (wrc - ready) * g
                maximum(ready, wrc, out=ready)
            complete, commit = issue_commit(ready, exec_lat, dst_col[index])
            if fl & 2 and index in needed_rows:  # F_STORE a later load can see
                store_vals[index] = (complete, commit)
            if fl & 4:  # F_BRANCH
                pc = pcs_col[index]
                npc = npcs_col[index]
                bc = bcs_col[index]
                resolve = complete
                if not cassandra:
                    pred = bpu_flow(pc, npc, bc, fl & 64)
                    bpu_outcome(pred, npc, resolve)
                else:
                    cls = plan_cls[pc]
                    if cls == 0:
                        pred = bpu_flow(pc, npc, bc, fl & 64)
                        integrity_split(pred, npc, resolve)
                    elif cls == 1:
                        if not lite:
                            stp = plan_stp.get(pc)
                            if stp is not None and stp != npc:
                                raise ReplayMismatchError(
                                    "single-target hint for PC %d points at %r "
                                    "but execution went to %d" % (pc, stp, npc)
                                )
                    elif cls == 2:
                        # Traced replay under the no-eviction elision: a miss
                        # is exactly "first lookup" and the miss event is
                        # scalar; only its latency cost is per-config.
                        pos = btu_pos[pc]
                        extra = None
                        if not pos:
                            nbm += 1
                            extra = miss_lat
                        targets = btu_targets[pc]
                        tidx = pos % len(targets)
                        target = targets[tidx]
                        btu_pos[pc] = pos + 1
                        if btu_long[pc]:
                            eid = btu_eids[pc][tidx]
                            pfm = (eid >= epe_vec) & (eid % epe_vec == 0)
                            if pfm.any():
                                nbp += pfm
                                bump = pf_lat * pfm
                                extra = bump if extra is None else extra + bump
                        if target != npc:
                            raise ReplayMismatchError(
                                "BTU replay for PC %d produced target %d but "
                                "the sequential execution went to %d"
                                % (pc, target, npc)
                            )
                        if extra is not None:
                            em = extra > 0
                            fnb = where(em, maximum(fnb, fc + extra), fnb)
                    else:  # cls == 3: secret-dependent fetch stall
                        fetch_stall_all(resolve)
        else:
            # Pure ALU fast path: operands + issue/commit only.
            merge_operands(ready, s0_col[index], s1_col[index], s2_col[index])
            issue_commit(ready, lat_rows[lat_cls[index]], dst_col[index])

    for k, s in enumerate(states):
        s.history = int(history[k])

    if traced:
        occupancy = sum(1 for v in btu_pos.values() if v)
    bpu_mis = ncm + nrm + nim
    results: List[Dict[str, int]] = []
    for k in range(K):
        results.append(
            {
                "cycles": int(lc[k]),
                "store_forwards": int(nf[k]) if allow_fwd else 0,
                "stl_blocked": 0 if allow_fwd else int(nstl[k]),
                "delayed_instructions": int(nd[k]) if gate_mask else 0,
                "delay_cycles": int(dcyc[k]) if gate_mask else 0,
                "squash_cycles": int(sq[k]),
                "fetch_stall_cycles": int(fsc[k]),
                "integrity_stall_branches": int(ni[k]) if cassandra else 0,
                "btu_misses": int(nbm[k]) if traced else 0,
                "btu_prefetches": int(nbp[k]) if traced else 0,
                "bpu_mispredicted": int(bpu_mis[k]),
                "l1i_miss": 0,
                "l1d_miss": 0,
                "btu_occupancy": occupancy if traced else 0,
            }
        )
    return results
