"""Emitters: lower the kernel IR of :mod:`repro.engine.ir` onto a target.

Three targets exist today:

* :mod:`repro.engine.emit.python` — renders one specialized tree into the
  exec-compiled per-(spec × config) Python source the engine has always
  run (byte-identical to the historical string generator; pinned by golden
  snapshots and the fuzz parity suite).
* :mod:`repro.engine.emit.c` — renders the same specialized tree into one
  self-contained C translation unit (``int64_t kernel(int64_t *a)`` over a
  flat argument vector).  :mod:`repro.engine.native` owns compiling,
  caching, and calling the result; this module only produces source, so it
  stays importable — and its golden snapshots testable — on machines with
  no compiler at all.
* :mod:`repro.engine.emit.columns` — the NumPy multi-config tier: one walk
  over a lowered trace's columns evaluates a whole cohort of configs at
  once with exact int64 arithmetic.  Optional — importing it degrades
  gracefully when NumPy is absent (``columns_available()`` is False and
  the batch layer falls back to the python tier).

Emitters never re-derive specialization decisions: the IR transforms
(:func:`repro.engine.ir.lower_kernel`) already resolved them.
"""
