"""The Python-source emitter: kernel IR → exec-compilable source text.

This is deliberately the dumbest possible emitter: every specialization
decision was already resolved by the IR transforms, so all that remains is
indentation bookkeeping and joining :class:`~repro.engine.ir.Line` parts
(literal strings interleaved with rendered expression nodes).  The output
is byte-identical to the historical string-concatenation generator in
:mod:`repro.engine.kernels` — pinned by the golden snapshots under
``tests/engine/golden/`` — so the exec/compile layer above it did not have
to change at all.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.engine.ir import Block, Expr, Guard, Line, Stat, Stmt

_INDENT = "    "


def render(body: Sequence[Stmt]) -> str:
    """Render a fully lowered tree (no Guard/Stat nodes) into source text."""
    out: List[str] = []
    _walk(body, 0, out)
    return "\n".join(out) + "\n"


def _walk(body: Sequence[Stmt], depth: int, out: List[str]) -> None:
    for stmt in body:
        if isinstance(stmt, Line):
            pieces = [
                part.render() if isinstance(part, Expr) else part
                for part in stmt.parts
            ]
            out.append(_INDENT * depth + "".join(pieces))
        elif isinstance(stmt, Block):
            _walk(stmt.body, depth + stmt.indent, out)
        elif isinstance(stmt, (Guard, Stat)):
            raise TypeError(
                f"unlowered {type(stmt).__name__} node reached the emitter; "
                "run repro.engine.ir.lower_kernel first"
            )
        else:  # pragma: no cover - no other statement kinds exist
            raise TypeError(f"unknown IR statement {stmt!r}")
