"""Flat-array microarchitectural state for the generated kernels.

The object models in :mod:`repro.uarch` (``Cache``, ``BranchPredictionUnit``,
``BranchTraceUnit``) are the golden reference: every behavioural question is
settled by them.  The generated kernels of :mod:`repro.engine.kernels` do not
call them — they iterate over the flat representations defined here, chosen
so that

* the hot per-instruction structures are plain integer lists a kernel indexes
  with inlined geometry constants (no per-access dict hashing for the L1s,
  no attribute lookups, no per-branch method calls); and
* snapshot / restore for warm-up sharing is a handful of C-level
  ``list(...)`` / ``dict(...)`` copies instead of rebuilding unit objects.

Representations (all bit-equivalent to the object models by construction;
``tests/engine/test_kernel_parity.py`` asserts it end to end):

* **L1I / L1D** — one flat ``array('q')`` of ``num_sets * associativity``
  tags.  Each
  set owns the segment ``[set*assoc, (set+1)*assoc)`` kept in LRU→MRU order
  and left-padded with ``-1`` (tags are non-negative, so the padding can
  never match).  A hit deletes the tag and re-inserts it at the segment's
  MRU end; a miss shifts the whole segment left by one — which drops either
  a pad or the true LRU victim — and installs at the MRU end.  Both are two
  C-level ``del``/``insert`` memmoves and reproduce ``Cache.access`` exactly.
* **L2 / L3** — sparse ``{set_index: [tags LRU→MRU]}`` dicts, the same shape
  ``Cache`` uses internally (these levels are touched only on L1D misses,
  and dense arrays for a 30 MB L3 would make per-point restore the dominant
  cost again).
* **BPU** — the PHT as a flat ``array('q')``, the history register as an
  int, the BTB
  as a ``{pc: target}`` dict, the RSB as a list, and the loop predictor as
  ``{pc: [current_run, last_trip, confidence]}`` rows (a list per branch
  instead of a ``_LoopEntry`` object, so the kernel mutates indices, not
  attributes).
* **BTU** — the immutable replay payload (targets / element ids / long-trace
  flags, extracted once per workload via
  :meth:`repro.uarch.btu.BranchTraceUnit.replay_data`) is shared read-only by
  every point; the mutable part is two ``{pc: int}`` position dicts plus the
  residency list.

The hot flat-int structures (L1I / L1D / PHT) are ``array('q')`` rather
than plain lists: a Python kernel indexes and mutates them exactly like a
list, while the native tier (:mod:`repro.engine.native`) obtains their
machine addresses via ``buffer_info()`` and lets the compiled kernel mutate
the same memory in place — no per-call marshalling for the largest state
components.  Snapshot restore also gets cheaper: ``array(...)`` from
another array is a single memcpy.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple

from repro.uarch.config import CoreConfig

#: Immutable per-workload BTU replay payload:
#: ``(targets, element_ids, long_trace)`` keyed by branch PC.
BtuReplayData = Tuple[Dict[int, List[int]], Dict[int, List[int]], Dict[int, bool]]

#: The empty payload used when a point has no trace bundle.
EMPTY_BTU_DATA: BtuReplayData = ({}, {}, {})


# --------------------------------------------------------------------------- #
# Flat cache conversions
# --------------------------------------------------------------------------- #
def flat_cache_new(num_sets: int, associativity: int) -> "array":
    """An empty flat cache: every segment all padding."""
    # b"\xff" * 8 is int64 -1; one bytes fill beats a Python-level loop.
    return array("q", b"\xff" * (8 * num_sets * associativity))


def flat_cache_from_sets(
    sets: Dict[int, List[int]], num_sets: int, associativity: int
) -> "array":
    """Convert a ``Cache.snapshot_state()`` dict into the flat layout.

    Ways arrive LRU→MRU and are right-aligned into their segment so that the
    kernel's shift-left-install keeps exactly the object model's eviction
    order.
    """
    flat = flat_cache_new(num_sets, associativity)
    for index, ways in sets.items():
        n = len(ways)
        if n > associativity:  # pragma: no cover - snapshot invariant
            raise ValueError(f"set {index} holds {n} ways > associativity")
        end = index * associativity + associativity
        flat[end - n : end] = array("q", ways)
    return flat


def flat_cache_to_sets(
    flat: "array", num_sets: int, associativity: int
) -> Dict[int, List[int]]:
    """The inverse conversion (occupied sets only), for tests and snapshots."""
    sets: Dict[int, List[int]] = {}
    for index in range(num_sets):
        base = index * associativity
        ways = [tag for tag in flat[base : base + associativity] if tag >= 0]
        if ways:
            sets[index] = ways
    return sets


def copy_sparse_sets(sets: Dict[int, List[int]]) -> Dict[int, List[int]]:
    """A point-private copy of a sparse L2/L3 snapshot."""
    return {index: list(ways) for index, ways in sets.items()}


# --------------------------------------------------------------------------- #
# Flat BPU conversions
# --------------------------------------------------------------------------- #
#: ``(pht, history, btb, rsb, loops_rows)`` — the kernel-side BPU state
#: (the PHT is an ``array('q')``; see the module docstring).
FlatBpu = Tuple["array", int, Dict[int, int], List[int], Dict[int, List[int]]]


def flat_bpu_new(config: CoreConfig) -> FlatBpu:
    """A freshly constructed predictor (weakly-taken PHT, empty tables)."""
    return (array("q", [2]) * (1 << config.pht_bits), 0, {}, [], {})


def flat_bpu_from_snapshot(snapshot: Tuple) -> FlatBpu:
    """Convert a ``BranchPredictionUnit.snapshot_state()`` tuple."""
    pht, history, btb, rsb, loops = snapshot
    rows = {pc: [run, trip, conf] for pc, (run, trip, conf) in loops.items()}
    return (array("q", pht), history, dict(btb), list(rsb), rows)


def copy_flat_bpu(bpu: FlatBpu) -> FlatBpu:
    pht, history, btb, rsb, loops = bpu
    return (array("q", pht), history, dict(btb), list(rsb), {pc: list(row) for pc, row in loops.items()})


# --------------------------------------------------------------------------- #
# Flat BTU conversions
# --------------------------------------------------------------------------- #
#: ``(positions, committed, resident)`` — the mutable per-point BTU state.
FlatBtu = Tuple[Dict[int, int], Dict[int, int], List[int]]


def flat_btu_new(data: BtuReplayData) -> FlatBtu:
    targets, _eids, _long = data
    return ({pc: 0 for pc in targets}, {pc: 0 for pc in targets}, [])


def flat_btu_from_snapshot(snapshot: Tuple) -> FlatBtu:
    """Convert a ``BranchTraceUnit.snapshot_state()`` tuple."""
    positions, resident = snapshot
    pos = {pc: position for pc, (position, _committed) in positions.items()}
    committed = {pc: comm for pc, (_position, comm) in positions.items()}
    return (pos, committed, list(resident))


def copy_flat_btu(btu: FlatBtu) -> FlatBtu:
    pos, committed, resident = btu
    return (dict(pos), dict(committed), list(resident))


# --------------------------------------------------------------------------- #
# The per-point state bundle
# --------------------------------------------------------------------------- #
class FlatState:
    """All mutable microarchitectural state one kernel invocation touches.

    Everything here is plain lists / dicts / ints; the kernel binds each
    field to a local once and mutates in place (``history`` is written back
    at the end of the run).  The BTU replay payload fields are shared
    read-only across every point of a workload.
    """

    __slots__ = (
        "l1i",
        "l1d",
        "l2",
        "l3",
        "pht",
        "history",
        "btb",
        "rsb",
        "loops",
        "btu_targets",
        "btu_eids",
        "btu_long",
        "btu_pos",
        "btu_committed",
        "btu_resident",
        # The native tier's per-point buffer session (opaque to this module;
        # owned by repro.engine.native).  ``None`` whenever no compiled
        # kernel holds live views over this state.
        "native_session",
    )

    def __init__(self, config: CoreConfig, btu_data: Optional[BtuReplayData] = None) -> None:
        data = btu_data if btu_data is not None else EMPTY_BTU_DATA
        self.l1i = flat_cache_new(config.l1i.num_sets, config.l1i.associativity)
        self.l1d = flat_cache_new(config.l1d.num_sets, config.l1d.associativity)
        self.l2: Dict[int, List[int]] = {}
        self.l3: Dict[int, List[int]] = {}
        self.pht, self.history, self.btb, self.rsb, self.loops = flat_bpu_new(config)
        self.btu_targets, self.btu_eids, self.btu_long = data
        self.btu_pos, self.btu_committed, self.btu_resident = flat_btu_new(data)
        self.native_session = None

    # ------------------------------------------------------------------ #
    # Warm-state restore (cheap array copies)
    # ------------------------------------------------------------------ #
    def restore_icache(self, flat) -> None:
        self.native_session = None
        self.l1i[:] = flat if isinstance(flat, array) else array("q", flat)

    def restore_dcache(
        self, l1d, l2: Dict[int, List[int]], l3: Dict[int, List[int]]
    ) -> None:
        self.native_session = None
        self.l1d[:] = l1d if isinstance(l1d, array) else array("q", l1d)
        self.l2 = copy_sparse_sets(l2)
        self.l3 = copy_sparse_sets(l3)

    def restore_bpu(self, bpu: FlatBpu) -> None:
        self.native_session = None
        self.pht, self.history, self.btb, self.rsb, self.loops = copy_flat_bpu(bpu)

    def restore_btu(self, btu: FlatBtu) -> None:
        self.native_session = None
        self.btu_pos, self.btu_committed, self.btu_resident = copy_flat_btu(btu)

    def btu_occupancy(self) -> int:
        return len(self.btu_resident)
