"""Multi-point batched simulation over one shared lowering.

:func:`simulate_batch` is the engine's front door for sweeps: given one
workload's sequential execution and trace bundle, it times any number of
(policy × config × BTU-flush × warm-up) points while paying the
policy-independent work once —

* the columnar lowering is computed (or taken from the caller's artifact
  cache) a single time;
* warm-up state is built component-wise per (config, component class,
  passes) by :class:`~repro.engine.warmup.WarmStateBuilder` and *restored*
  into each point's units instead of being re-simulated per policy;
* only points whose warm-up is genuinely cycle-dependent (an active BTU
  flush interval under a trace-replaying policy) run private full warm-up
  passes, and those run on the fast engine too.

Results are bit-identical to the legacy one-point-at-a-time path
(``tests/engine/test_parity.py``).  Policies without an engine spec fall
back to the object-based reference loop, still inside the same batch call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tracegen import TraceBundle
from repro.arch.executor import ExecutionResult
from repro.engine.lowering import LoweredTrace, lower_execution
from repro.engine.warmup import WarmStateBuilder
from repro.uarch.btu import BranchTraceUnit
from repro.uarch.config import GOLDEN_COVE_LIKE, CoreConfig
from repro.uarch.defenses.base import DefensePolicy


@dataclass(frozen=True)
class PointSpec:
    """One simulation point of a batch (the workload is implied by the call).

    ``config=None`` selects the batch-level default config.
    """

    policy: DefensePolicy
    config: Optional[CoreConfig] = None
    btu_flush_interval: Optional[int] = None
    warmup_passes: int = 1


@dataclass
class BatchStats:
    """Work counters proving what the batch shared (asserted by tests)."""

    points: int = 0
    #: Columnar lowerings computed by this batch (0 when already memoized).
    lowerings: int = 0
    #: Measured engine passes (one per non-fallback point).
    measured_passes: int = 0
    #: Private full warm-up passes (cycle-dependent BTU-flush points, and
    #: forwarding-allowed points when the shared d-cache replay is not
    #: provably exact for this trace).
    full_warmup_passes: int = 0
    #: Component replay walks by the warm-state builders (shared across points).
    warmup_component_walks: int = 0
    #: Points warmed privately because store forwarding could skew the
    #: shared d-cache state (see WarmStateBuilder.forwarding_shareable).
    forwarding_private_points: int = 0
    #: Points that took the object-loop fallback (policy without a spec).
    fallback_points: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "points": self.points,
            "lowerings": self.lowerings,
            "measured_passes": self.measured_passes,
            "full_warmup_passes": self.full_warmup_passes,
            "warmup_component_walks": self.warmup_component_walks,
            "forwarding_private_points": self.forwarding_private_points,
            "fallback_points": self.fallback_points,
        }


def simulate_batch(
    result: ExecutionResult,
    bundle: Optional[TraceBundle],
    points: Sequence[PointSpec],
    config: CoreConfig = GOLDEN_COVE_LIKE,
    trace: Optional[LoweredTrace] = None,
    program_name: Optional[str] = None,
    batch_stats: Optional[BatchStats] = None,
) -> List["SimulationResult"]:  # noqa: F821 - imported lazily (cycle guard)
    """Simulate every point over one shared lowering; results in point order."""
    from repro.uarch.core import CoreModel  # lazy: core imports the engine

    stats = batch_stats if batch_stats is not None else BatchStats()

    if trace is None:
        already_lowered = getattr(result, "_lowered_trace", None) is not None
        trace = lower_execution(result)
        if not already_lowered:
            stats.lowerings += 1
    else:
        # Seed the memo so per-point paths sharing this result reuse it too.
        result._lowered_trace = trace  # type: ignore[attr-defined]

    hint_table = bundle.hint_table if bundle is not None else None
    builders: Dict[tuple, WarmStateBuilder] = {}

    def builder_for(point_config: CoreConfig) -> WarmStateBuilder:
        key = point_config.identity()
        builder = builders.get(key)
        if builder is None:

            def btu_factory() -> BranchTraceUnit:
                traces = bundle.hardware_traces() if bundle is not None else {}
                return BranchTraceUnit(point_config.btu, traces, hint_table)

            builder = WarmStateBuilder(trace, point_config, hint_table, btu_factory)
            builders[key] = builder
        return builder

    simulations: List = []
    for point in points:
        point_config = point.config if point.config is not None else config
        core = CoreModel(
            config=point_config,
            policy=point.policy,
            bundle=bundle,
            btu_flush_interval=point.btu_flush_interval,
        )
        spec = point.policy.engine_spec()
        passes = max(point.warmup_passes, 0)
        stats.points += 1

        if spec is None:
            # Object-loop fallback: warm up and measure exactly like the
            # legacy per-point path.
            stats.fallback_points += 1
            for _ in range(passes):
                core.run(result.dynamic)
                core.reset_stats()
            simulation = core.run(result.dynamic)
        else:
            # BTU flushes trigger on commit cycles, so a flush point's warm
            # BTU state depends on its own timing; and a policy that allows
            # store-to-load forwarding may skip forwarded loads' d-cache
            # accesses during warm-up, which the shared replay can only
            # reproduce when the trace provably has no access pattern where
            # the skip matters.  Either way the point warms up privately —
            # still on the engine, still over the shared lowering.
            flush_private = (
                point.btu_flush_interval is not None and spec.btu_warm_class == "replay"
            )
            forwarding_private = (
                passes > 0
                and spec.allow_store_forwarding
                and not builder_for(point_config).forwarding_shareable()
            )
            if forwarding_private:
                stats.forwarding_private_points += 1
            if flush_private or forwarding_private:
                for _ in range(passes):
                    core.run(trace)
                    core.reset_stats()
                    stats.full_warmup_passes += 1
            elif passes:
                builder_for(point_config).warm_units(
                    spec, passes, core.bpu, core.caches, core.icache, core.btu
                )
            simulation = core.run(trace)
            stats.measured_passes += 1

        if program_name is not None:
            simulation.program_name = program_name
        simulations.append(simulation)

    stats.warmup_component_walks += sum(b.component_walks for b in builders.values())
    return simulations
