"""Multi-point batched simulation over one shared lowering.

:func:`simulate_batch` is the engine's front door for sweeps: given one
workload's sequential execution and trace bundle, it times any number of
(policy × config × BTU-flush × warm-up) points while paying the
policy-independent work once —

* the columnar lowering is computed (or taken from the caller's artifact
  cache) a single time;
* warm-up state is built component-wise per (config, component class,
  passes) by :class:`~repro.engine.warmup.WarmStateBuilder` and *restored*
  into each point's state instead of being re-simulated per policy;
* only points whose warm-up is genuinely cycle-dependent (an active BTU
  flush interval under a trace-replaying policy, or forwarding-allowed
  policies on traces where the shared d-cache replay is not provably exact)
  run private full warm-up passes — and those run on the fast path too;
* the measured (and private warm-up) passes run on **generated kernels**
  (:mod:`repro.engine.kernels`) specialized per (policy spec × config) over
  the flat-array state of :mod:`repro.engine.state`, with the per-workload
  setup — BTU replay payload extraction, the crypto-PC table, warm-state
  conversion — shared across every point of the batch;
* under the default ``columns`` tier (see
  :func:`repro.engine.kernels.engine_tier`), points that form a large
  enough provably-exact cohort — same canonical spec and warm-up count, no
  flush, every config holding the residency/no-eviction proofs — are
  evaluated by **one** NumPy trace walk
  (:mod:`repro.engine.emit.columns`) instead of one python-kernel pass per
  config; everything outside the cohort, and everything when NumPy is
  absent, runs on the python kernels exactly as before.

``REPRO_ENGINE_TIER`` selects the tier explicitly (``columns`` / ``python``
/ ``interp``); the legacy ``REPRO_ENGINE_KERNELS=off`` spelling still
falls back to the PR-2 interpreter (:func:`repro.engine.engine.run_trace`
over the object units).

Results are bit-identical to the legacy one-point-at-a-time path
(``tests/engine/test_parity.py``) on every tier: kernels are pinned to the
reference loop by ``tests/engine/test_kernel_parity.py`` and the columns
tier to the kernels by ``tests/engine/test_columns_parity.py``.  Policies
without an engine spec fall back to the object-based reference loop, still
inside the same batch call.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.tracegen import TraceBundle
from repro.arch.executor import ExecutionResult
from repro.engine import native
from repro.engine.kernels import (
    classify_branch,
    engine_tier,
    get_kernel,
    relevant_flag_mask,
)
from repro.engine.lowering import LoweredTrace, lower_execution
from repro.engine.state import BtuReplayData, FlatState
from repro.engine.warmup import WarmStateBuilder
from repro.uarch.btu import BranchTraceUnit
from repro.uarch.config import GOLDEN_COVE_LIKE, CoreConfig
from repro.uarch.defenses.base import DefensePolicy
from repro.uarch.stats import PipelineStats


@dataclass(frozen=True)
class PointSpec:
    """One simulation point of a batch (the workload is implied by the call).

    ``config=None`` selects the batch-level default config.
    """

    policy: DefensePolicy
    config: Optional[CoreConfig] = None
    btu_flush_interval: Optional[int] = None
    warmup_passes: int = 1


@dataclass
class BatchStats:
    """Work counters proving what the batch shared (asserted by tests)."""

    points: int = 0
    #: Columnar lowerings computed by this batch (0 when already memoized).
    lowerings: int = 0
    #: Measured passes (one per non-fallback point, kernel or interpreter).
    measured_passes: int = 0
    #: Private full warm-up passes (cycle-dependent BTU-flush points, and
    #: forwarding-allowed points when the shared d-cache replay is not
    #: provably exact for this trace).
    full_warmup_passes: int = 0
    #: Component replay walks by the warm-state builders (shared across points).
    warmup_component_walks: int = 0
    #: Points warmed privately because store forwarding could skew the
    #: shared d-cache state (see WarmStateBuilder.forwarding_shareable).
    forwarding_private_points: int = 0
    #: Points that took the object-loop fallback (policy without a spec).
    fallback_points: int = 0
    #: Points whose counters came from a python-tier generated kernel —
    #: whether freshly measured or shared via the canonicalization memo.
    #: Zero on the ``interp`` tier (every non-fallback point runs the
    #: interpreter) and partial on the ``columns`` tier (cohort members are
    #: counted under ``columns_points`` instead).
    kernel_points: int = 0
    #: Points whose counters came from a columns-tier cohort walk.
    columns_points: int = 0
    #: NumPy cohort walks performed (each covers many configs at once).
    columns_cohorts: int = 0
    #: Points whose counters came from a compiled C kernel (native tier).
    native_points: int = 0
    #: Wall-clock seconds spent compiling C kernels during this batch (zero
    #: on warm runs — the ``.so`` comes from the ArtifactCache).
    native_compile_seconds: float = 0.0
    #: Compiled kernels this batch obtained without invoking the compiler
    #: (ArtifactCache reads + already-loaded shared objects).
    native_cache_hits: int = 0
    #: Kernel points whose measured pass was shared with an earlier point
    #: because their specs canonicalized identically for this trace (e.g.
    #: forwarding variants on a store-free trace, gated policies when no
    #: instruction carries a gate flag).
    deduped_points: int = 0
    #: Wall-clock seconds inside kernel invocations (measured + private
    #: warm-up); the batch's remaining time is per-point setup overhead,
    #: which the benchmark reports as ``overhead_seconds``.
    kernel_seconds: float = 0.0
    #: Wall-clock seconds inside columns cohort walks.
    columns_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "points": self.points,
            "lowerings": self.lowerings,
            "measured_passes": self.measured_passes,
            "full_warmup_passes": self.full_warmup_passes,
            "warmup_component_walks": self.warmup_component_walks,
            "forwarding_private_points": self.forwarding_private_points,
            "fallback_points": self.fallback_points,
            "kernel_points": self.kernel_points,
            "columns_points": self.columns_points,
            "columns_cohorts": self.columns_cohorts,
            "native_points": self.native_points,
            "native_compile_seconds": round(self.native_compile_seconds, 4),
            "native_cache_hits": self.native_cache_hits,
            "deduped_points": self.deduped_points,
            "kernel_seconds": round(self.kernel_seconds, 4),
            "columns_seconds": round(self.columns_seconds, 4),
        }


def _apply_kernel_counters(
    stats: PipelineStats,
    counters: Dict[str, int],
    n: int,
    base: Dict[str, int],
    plan_occ: Optional[Tuple[int, int, int, int]],
    allow_fwd: bool,
) -> None:
    """Write one kernel run's counters back into a ``PipelineStats``.

    Mirrors the statistics write-back of :func:`repro.engine.engine.run_trace`:
    monotone counters are incremented, absolute fields overwritten, and the
    measured-pass cache miss rates derive from this run's accesses alone.
    The statistics that are pure trace properties come from the batch's
    shared precomputation (``base`` and, for Cassandra-kind specs, the
    per-class branch occurrence counts ``plan_occ``) instead of per-loop
    increments; the genuinely dynamic ones come from the kernel.
    """
    stats.fetched_instructions += n
    stats.renamed_instructions += n
    stats.issued_instructions += n
    stats.committed_instructions += n
    loads = base["loads"]
    stores = base["stores"]
    stats.loads += loads
    stats.stores += stores
    stats.branches += base["branches"]
    stats.crypto_branches += base["crypto_branches"]
    forwards = counters["store_forwards"]
    stats.store_forwards += forwards
    stats.stl_blocked += counters["stl_blocked"]
    stats.delayed_instructions += counters["delayed_instructions"]
    stats.delay_cycles += counters["delay_cycles"]
    stats.squash_cycles += counters["squash_cycles"]
    stats.fetch_stall_cycles += counters["fetch_stall_cycles"]
    stats.integrity_stall_branches += counters["integrity_stall_branches"]
    stats.btu_misses += counters["btu_misses"]
    stats.btu_prefetches += counters["btu_prefetches"]
    if plan_occ is not None:
        bpu_flow, single_target, replayed, stalled = plan_occ
        stats.single_target_branches += single_target
        stats.btu_replayed += replayed
        stats.fetch_stall_branches += stalled
        stats.bpu_predicted = bpu_flow
    else:
        stats.bpu_predicted = base["branches"]
    stats.instructions = n
    stats.cycles = counters["cycles"]
    stats.bpu_mispredicted = counters["bpu_mispredicted"]
    # Every instruction fetches through the L1I; loads access the L1D unless
    # forwarded, stores always install.  Hits are accesses minus misses, so
    # the kernel only ever counts misses (zero under a residency proof).
    d_acc = (loads - forwards if allow_fwd else loads) + stores
    stats.extra["l1d_miss_rate"] = counters["l1d_miss"] / d_acc if d_acc else 0.0
    stats.extra["l1i_miss_rate"] = counters["l1i_miss"] / n if n else 0.0
    stats.extra["btu_occupancy"] = counters["btu_occupancy"]


def simulate_batch(
    result: Optional[ExecutionResult],
    bundle: Optional[TraceBundle],
    points: Sequence[PointSpec],
    config: CoreConfig = GOLDEN_COVE_LIKE,
    trace: Optional[LoweredTrace] = None,
    program_name: Optional[str] = None,
    batch_stats: Optional[BatchStats] = None,
) -> List["SimulationResult"]:  # noqa: F821 - imported lazily (cycle guard)
    """Simulate every point over one shared lowering; results in point order.

    ``result`` may be ``None`` when an explicit ``trace`` is supplied — the
    shard-worker wire format ships only the preserialized columns, never the
    ``DynamicInstruction`` object stream — in which case every point's policy
    must lower to an engine spec (the object-loop fallback replays
    ``result.dynamic``, which does not exist on the wire).
    """
    from repro.uarch.core import CoreModel, SimulationResult  # lazy: core imports the engine

    stats = batch_stats if batch_stats is not None else BatchStats()
    tier = engine_tier()
    use_kernels = tier != "interp"
    use_native = tier == "native"
    native_snapshot = native.counters_snapshot() if use_native else None

    if trace is None:
        if result is None:
            raise ValueError("simulate_batch needs an ExecutionResult or an explicit trace")
        already_lowered = getattr(result, "_lowered_trace", None) is not None
        trace = lower_execution(result)
        if not already_lowered:
            stats.lowerings += 1
    elif result is not None:
        # Seed the memo so per-point paths sharing this result reuse it too.
        result._lowered_trace = trace  # type: ignore[attr-defined]

    hint_table = bundle.hint_table if bundle is not None else None
    default_program_name = bundle.program.name if bundle is not None else "program"
    builders: Dict[tuple, WarmStateBuilder] = {}

    def builder_for(point_config: CoreConfig) -> WarmStateBuilder:
        key = point_config.identity()
        builder = builders.get(key)
        if builder is None:

            def btu_factory() -> BranchTraceUnit:
                traces = bundle.hardware_traces() if bundle is not None else {}
                return BranchTraceUnit(point_config.btu, traces, hint_table)

            builder = WarmStateBuilder(trace, point_config, hint_table, btu_factory)
            builders[key] = builder
        return builder

    # Per-workload kernel-path setup, computed lazily and shared by every
    # point: the BTU replay payload (targets / element ids / long flags are
    # config-independent), the crypto-PC table, the static branch-flow plan,
    # the per-config resolved latency column, and the trace-property counts.
    batch_shared: Dict[object, object] = {}

    def shared_btu_data(point_config: CoreConfig) -> BtuReplayData:
        data = batch_shared.get("btu")
        if data is None:
            traces = bundle.hardware_traces() if bundle is not None else {}
            unit = BranchTraceUnit(point_config.btu, traces, hint_table)
            data = unit.replay_data()
            batch_shared["btu"] = data
        return data  # type: ignore[return-value]

    def shared_crypto_pcs() -> bytes:
        table = batch_shared.get("crypto_pcs")
        if table is None:
            from repro.engine.engine import crypto_pc_table

            table = bytes(crypto_pc_table(hint_table, trace.max_pc))
            batch_shared["crypto_pcs"] = table
        return table  # type: ignore[return-value]

    def shared_mfl_col(mask: int) -> List[int]:
        """The flags column premasked to the bits a kernel can read."""
        col = batch_shared.get(("mfl", mask))
        if col is None:
            col = list(map(mask.__and__, trace.flags))
            batch_shared[("mfl", mask)] = col
        return col  # type: ignore[return-value]

    def shared_lat_col(point_config: CoreConfig) -> List[int]:
        tab = (
            point_config.alu_latency,
            point_config.mul_latency,
            point_config.div_latency,
            point_config.store_latency,
            point_config.branch_resolve_latency,
        )
        col = batch_shared.get(("lat", tab))
        if col is None:
            col = list(map(tab.__getitem__, trace.lat_class))
            batch_shared[("lat", tab)] = col
        return col  # type: ignore[return-value]

    def shared_rows(point_config: CoreConfig, mask: int) -> List[tuple]:
        """The pre-zipped per-instruction row tuples a kernel iterates.

        Only the six columns every instruction reads are in the tuples
        (dst, sources, premasked flags, resolved latency); PCs, addresses,
        and branch classes are indexed on demand by the slow paths.
        Building the tuples once per (latency table, flag mask) means every
        kernel run unpacks ready-made tuples instead of re-driving a
        multi-column zip — the zip itself was a measurable share of short
        measured passes.
        """
        tab = (
            point_config.alu_latency,
            point_config.mul_latency,
            point_config.div_latency,
            point_config.store_latency,
            point_config.branch_resolve_latency,
        )
        rob = point_config.rob_size
        split = batch_shared.get(("rows", tab, mask, rob))
        if split is None:
            rows = batch_shared.get(("rows", tab, mask))
            if rows is None:
                rows = list(
                    zip(
                        trace.dst,
                        trace.src0,
                        trace.src1,
                        trace.src2,
                        shared_mfl_col(mask),
                        shared_lat_col(point_config),
                    )
                )
                batch_shared[("rows", tab, mask)] = rows
            # Pre-split at the ROB boundary: the kernels' head loop carries
            # no occupancy check, the tail loop reads it unconditionally.
            split = (rows[: rob], rows[rob:])
            batch_shared[("rows", tab, mask, rob)] = split
        return split  # type: ignore[return-value]

    def shared_base_counts() -> Dict[str, int]:
        counts = batch_shared.get("base")
        if counts is None:
            loads = stores = branches = crypto = 0
            for fl in trace.flags:
                if fl & 1:  # F_LOAD
                    loads += 1
                elif fl & 2:  # F_STORE
                    stores += 1
                if fl & 4:  # F_BRANCH
                    branches += 1
                    if fl & 8:  # F_CRYPTO
                        crypto += 1
            counts = {
                "loads": loads,
                "stores": stores,
                "branches": branches,
                "crypto_branches": crypto,
            }
            batch_shared["base"] = counts
        return counts  # type: ignore[return-value]

    def gate_mask_relevant(mask: int) -> bool:
        """Whether any instruction of this trace carries a gate-mask flag."""
        hit = batch_shared.get(("gate", mask))
        if hit is None:
            hit = any(fl & mask for fl in trace.flags)
            batch_shared[("gate", mask)] = hit
        return hit  # type: ignore[return-value]

    def canonical_spec(spec):
        """Project ``spec`` onto the dimensions this trace can observe.

        Two points whose specs canonicalize identically are provably
        bit-identical, so the batch runs one measured pass and shares the
        counters:

        * store-to-load forwarding (and its STL restriction) is only
          exercised when a load can find an in-flight store — impossible
          on a trace without loads or without stores;
        * an issue gate only fires on instructions carrying one of its
          flag bits — a mask no instruction matches is dead code.
        """
        base = shared_base_counts()
        if not spec.allow_store_forwarding and (
            base["loads"] == 0 or base["stores"] == 0
        ):
            spec = replace(spec, allow_store_forwarding=True)
        if spec.gate_mask and not gate_mask_relevant(spec.gate_mask):
            spec = replace(spec, gate_mask=0)
        return spec

    #: Counters of measured kernel runs already performed by this batch,
    #: keyed by everything that can influence them.
    measured_memo: Dict[tuple, Dict[str, int]] = {}
    #: Memo keys whose counters came from a columns cohort walk (attribution
    #: for ``BatchStats.columns_points`` vs ``kernel_points``).
    columns_keys: Set[tuple] = set()
    #: Memo keys whose counters came from a compiled C kernel (attribution
    #: for ``BatchStats.native_points``).
    native_keys: Set[tuple] = set()

    def shared_plan(
        lite: bool, point_config: CoreConfig
    ) -> Tuple[bytes, Dict[int, int], Tuple[int, int, int, int], int]:
        """The static per-PC fetch-flow plan and its occurrence counts.

        ``classify_branch`` reads only hints and the immutable replay
        payload, so the class of every static branch — and hence the number
        of dynamic branches taking each flow — is a trace property shared
        by every point of the same (kind, lite) family.  The final element
        is the number of *distinct* traced static branches, which licenses
        the kernels' BTU no-eviction elision when it fits the BTU.
        """
        plan = batch_shared.get(("plan", lite))
        if plan is None:
            crypto_pcs = shared_crypto_pcs()
            btu_targets = None if lite else shared_btu_data(point_config)[0]
            plan_cls = bytearray(trace.max_pc + 2)
            plan_stp: Dict[int, int] = {}
            occ = [0, 0, 0, 0]
            traced_static = 0
            seen = set()
            for pc, fl in zip(trace.pcs, trace.flags):
                if fl & 4:  # F_BRANCH
                    if pc not in seen:
                        seen.add(pc)
                        cls, stp = classify_branch(
                            pc, fl, crypto_pcs, hint_table, btu_targets, lite
                        )
                        plan_cls[pc] = cls
                        if cls == 2:
                            traced_static += 1
                        if stp is not None:
                            plan_stp[pc] = stp
                    occ[plan_cls[pc]] += 1
            plan = (bytes(plan_cls), plan_stp, tuple(occ), traced_static)
            batch_shared[("plan", lite)] = plan
        return plan  # type: ignore[return-value]

    def columns_precompute() -> None:
        """Seed ``measured_memo`` from NumPy cohort walks where provably exact.

        Groups the batch's kernel-eligible points by (canonical spec,
        warm-up passes, store-queue size), keeps the configs that hold every
        exactness proof the vector walk needs (cache residency, BTU elision
        for traced specs, BTB no-eviction, RSB no-overflow), and — when a
        group clears the ``REPRO_ENGINE_COLUMNS_MIN`` size threshold — runs
        one :func:`repro.engine.emit.columns.run_cohort` walk for all of its
        configs at once.  Ineligible or sub-threshold points simply stay on
        the python kernels; a missing NumPy disables the whole pass.
        """
        from repro.engine.emit import columns as emit_columns

        if not emit_columns.columns_available():
            return
        try:
            min_cohort = int(
                os.environ.get(
                    emit_columns.COLUMNS_MIN_ENV, emit_columns.DEFAULT_MIN_COHORT
                )
            )
        except ValueError:
            min_cohort = emit_columns.DEFAULT_MIN_COHORT
        groups: Dict[tuple, Dict[tuple, CoreConfig]] = {}
        for point in points:
            spec = point.policy.engine_spec()
            if spec is None or point.btu_flush_interval:
                continue
            passes = max(point.warmup_passes, 0)
            if passes == 0:
                # The residency proofs only license dropping the cache model
                # for points that start warm.
                continue
            if spec.kind == "cassandra" and hint_table is None:
                continue  # the per-point path raises the real error
            point_config = point.config if point.config is not None else config
            spec = canonical_spec(spec)
            key = (spec, passes, point_config.sq_size)
            groups.setdefault(key, {}).setdefault(
                point_config.identity(), point_config
            )
        for (spec, passes, _sq_size), by_identity in groups.items():
            if len(by_identity) < min_cohort:
                continue
            cassandra = spec.kind == "cassandra"
            traced = cassandra and not spec.lite
            any_config = next(iter(by_identity.values()))
            btu_data = shared_btu_data(any_config) if cassandra else None
            crypto_pcs = shared_crypto_pcs() if cassandra else b""
            if cassandra:
                plan_cls, plan_stp, _occ, traced_static = shared_plan(
                    spec.lite, any_config
                )
            else:
                plan_cls, plan_stp = b"", {}
                traced_static = 0
            update_pcs = emit_columns.btb_update_pcs(trace, plan_cls, cassandra)
            # The RSB persists across warm-up, so depth accumulates over
            # every pass that will actually run (warm + measured).
            rsb_peak = emit_columns.rsb_max_depth(
                trace, plan_cls, cassandra, passes + 1
            )
            eligible: List[CoreConfig] = []
            for cfg in by_identity.values():
                builder = builder_for(cfg)
                if not (builder.icache_resident() and builder.dcache_resident()):
                    continue
                if traced and traced_static > cfg.btu.entries:
                    continue
                if len(update_pcs) > cfg.btb_entries or rsb_peak > cfg.rsb_entries:
                    continue
                eligible.append(cfg)
            if len(eligible) < min_cohort:
                continue
            states = []
            for cfg in eligible:
                state = FlatState(cfg, btu_data)
                builder_for(cfg).warm_flat(
                    spec, passes, state, need_icache=False, need_dcache=False
                )
                states.append(state)
            start = time.perf_counter()
            cohort_counters = emit_columns.run_cohort(
                trace, spec, eligible, states, crypto_pcs, plan_cls, plan_stp
            )
            stats.columns_seconds += time.perf_counter() - start
            stats.columns_cohorts += 1
            for cfg, counters in zip(eligible, cohort_counters):
                memo_key = (spec, cfg, None, passes)
                measured_memo[memo_key] = counters
                columns_keys.add(memo_key)

    if use_kernels and tier == "columns" and points:
        columns_precompute()

    simulations: List = []
    for point in points:
        point_config = point.config if point.config is not None else config
        spec = point.policy.engine_spec()
        passes = max(point.warmup_passes, 0)
        stats.points += 1

        if spec is None:
            # Object-loop fallback: warm up and measure exactly like the
            # legacy per-point path.
            if result is None:
                raise ValueError(
                    f"policy {point.policy.name!r} has no engine spec and the "
                    "object-loop fallback needs the ExecutionResult, which a "
                    "trace-only (wire) batch does not carry"
                )
            stats.fallback_points += 1
            core = CoreModel(
                config=point_config,
                policy=point.policy,
                bundle=bundle,
                btu_flush_interval=point.btu_flush_interval,
            )
            for _ in range(passes):
                core.run(result.dynamic)
                core.reset_stats()
            simulation = core.run(result.dynamic)
            simulations.append(simulation)
            if program_name is not None:
                simulation.program_name = program_name
            continue

        # BTU flushes trigger on commit cycles, so a flush point's warm
        # BTU state depends on its own timing; and a policy that allows
        # store-to-load forwarding may skip forwarded loads' d-cache
        # accesses during warm-up, which the shared replay can only
        # reproduce when the trace provably has no access pattern where
        # the skip matters.  Either way the point warms up privately —
        # still on the fast path, still over the shared lowering.
        builder = builder_for(point_config)
        flush_private = (
            bool(point.btu_flush_interval) and spec.btu_warm_class == "replay"
        )

        if use_kernels:
            spec = canonical_spec(spec)
            cassandra = spec.kind == "cassandra"
            if cassandra and hint_table is None:
                raise ValueError("cassandra-kind engine specs require a hint table")
            # The reference loop and the interpreter treat any falsy
            # interval as "flushing disabled"; normalize so the kernels do
            # too (and so 0 and None share one memo slot).
            flush_interval = point.btu_flush_interval or None
            memo_key = (spec, point_config, flush_interval, passes)
            counters = measured_memo.get(memo_key)
            from_columns = memo_key in columns_keys
            if counters is None:
                # A warmed point under a residency proof cannot miss, so the
                # measured kernel drops that cache model entirely; the
                # d-cache proof also makes the shared warm state exact under
                # forwarding (no eviction ever consults the LRU order a
                # skipped access would have refreshed), sparing the private
                # warm-up passes.
                icache_ok = passes > 0 and builder.icache_resident()
                dcache_ok = passes > 0 and builder.dcache_resident()
                forwarding_private = (
                    passes > 0
                    and spec.allow_store_forwarding
                    and not dcache_ok
                    and not builder.forwarding_shareable()
                )
                if forwarding_private:
                    stats.forwarding_private_points += 1
                btu_data = shared_btu_data(point_config) if cassandra else None
                crypto_pcs = shared_crypto_pcs() if cassandra else b""
                if cassandra:
                    plan_cls, plan_stp, plan_occ, traced_static = shared_plan(
                        spec.lite, point_config
                    )
                else:
                    plan_cls, plan_stp = b"", {}
                    traced_static = 0
                state = FlatState(point_config, btu_data)
                flush_active = flush_interval is not None
                # With no flush active and every traced branch fitting the
                # BTU, residency can never evict and the kernel elides the
                # LRU list.
                btu_elide = (
                    cassandra
                    and not spec.lite
                    and not flush_active
                    and traced_static <= point_config.btu.entries
                )
                # The native tier serves a point all-or-nothing: mixing a
                # native warm pass with a python measured pass (or vice
                # versa) would leave one side reading state the other only
                # wrote into its own representation.  Any missing variant —
                # no compiler, toolchain rejection — drops the whole point
                # back onto the python kernels.
                kernel = warm_kernel = None
                if use_native:
                    kernel = native.get_native_kernel(
                        spec,
                        point_config,
                        flush_active,
                        icache_resident=icache_ok,
                        dcache_resident=dcache_ok,
                        btu_elide=btu_elide,
                    )
                    if kernel is not None and (flush_private or forwarding_private):
                        warm_kernel = native.get_native_kernel(
                            spec, point_config, flush_active, collect_stats=False
                        )
                        if warm_kernel is None:
                            kernel = None
                native_point = kernel is not None
                # Native kernels premask the flags column in compiled code,
                # so they skip the shared pre-zipped rows entirely.
                rows = (
                    None
                    if native_point
                    else shared_rows(point_config, relevant_flag_mask(spec))
                )
                if flush_private or forwarding_private:
                    # Private warm passes always model the caches in full:
                    # the first pass runs cold, and its miss timing feeds
                    # the cycle-triggered BTU flushes.
                    if warm_kernel is None:
                        warm_kernel = get_kernel(
                            spec, point_config, flush_active, collect_stats=False
                        )
                    for _ in range(passes):
                        start = time.perf_counter()
                        warm_kernel(
                            trace, state, rows, crypto_pcs, plan_cls, plan_stp,
                            flush_interval,
                        )
                        stats.kernel_seconds += time.perf_counter() - start
                        stats.full_warmup_passes += 1
                elif passes:
                    builder.warm_flat(
                        spec,
                        passes,
                        state,
                        need_icache=not icache_ok,
                        need_dcache=not dcache_ok,
                    )
                if kernel is None:
                    kernel = get_kernel(
                        spec,
                        point_config,
                        flush_active,
                        icache_resident=icache_ok,
                        dcache_resident=dcache_ok,
                        btu_elide=btu_elide,
                    )
                start = time.perf_counter()
                counters = kernel(
                    trace, state, rows, crypto_pcs, plan_cls, plan_stp,
                    flush_interval,
                )
                stats.kernel_seconds += time.perf_counter() - start
                measured_memo[memo_key] = counters
                if native_point:
                    native_keys.add(memo_key)
            elif not from_columns:
                # Sharing between columns cohort members is the tier's whole
                # point, not a canonicalization dedup — only python-tier memo
                # hits count here.
                stats.deduped_points += 1
            stats.measured_passes += 1
            if from_columns:
                stats.columns_points += 1
            elif memo_key in native_keys:
                stats.native_points += 1
            else:
                stats.kernel_points += 1
            plan_occ = (
                shared_plan(spec.lite, point_config)[2] if cassandra else None
            )
            point_stats = PipelineStats()
            _apply_kernel_counters(
                point_stats,
                counters,
                trace.n,
                shared_base_counts(),
                plan_occ,
                spec.allow_store_forwarding,
            )
            simulation = SimulationResult(
                program_name=default_program_name,
                policy_name=point.policy.name,
                stats=point_stats,
                config=point_config,
            )
        else:
            forwarding_private = (
                passes > 0
                and spec.allow_store_forwarding
                and not builder.forwarding_shareable()
            )
            if forwarding_private:
                stats.forwarding_private_points += 1
            core = CoreModel(
                config=point_config,
                policy=point.policy,
                bundle=bundle,
                btu_flush_interval=point.btu_flush_interval,
            )
            if flush_private or forwarding_private:
                for _ in range(passes):
                    core.run(trace)
                    core.reset_stats()
                    stats.full_warmup_passes += 1
            elif passes:
                builder.warm_units(
                    spec, passes, core.bpu, core.caches, core.icache, core.btu
                )
            simulation = core.run(trace)
            stats.measured_passes += 1

        if program_name is not None:
            simulation.program_name = program_name
        simulations.append(simulation)

    stats.warmup_component_walks += sum(b.component_walks for b in builders.values())
    if native_snapshot is not None:
        _count0, seconds0, hits0 = native_snapshot
        _count1, seconds1, hits1 = native.counters_snapshot()
        stats.native_compile_seconds += seconds1 - seconds0
        stats.native_cache_hits += hits1 - hits0
    return simulations
