"""``repro.engine`` — the columnar simulation engine.

This package lowers the timing model onto flat integer columns so that the
policy-independent cost of walking a workload's dynamic instruction stream
is paid once per workload instead of once per simulation point.

The layer contract, bottom to top:

1. :mod:`repro.engine.lowering` — :func:`~repro.engine.lowering.lower_execution`
   turns an :class:`~repro.arch.executor.ExecutionResult` into a
   :class:`~repro.engine.lowering.LoweredTrace`: parallel lists of opcode
   latency classes, renamed register indices, memory word addresses, branch
   classes, and a flag bitmask.  **The lowering is policy- and
   config-independent** — one lowering serves every (policy × config ×
   flush-interval) point of a sweep, and it is cacheable on disk as the
   ``lowered-trace`` artifact kind.
2. :mod:`repro.engine.engine` — :func:`~repro.engine.engine.run_trace`
   replays a lowered trace under an
   :class:`~repro.uarch.defenses.base.EnginePolicySpec` with cycle
   accounting bit-identical to the object-based reference loop
   (:meth:`repro.uarch.core.CoreModel.run_reference`).
3. :mod:`repro.engine.warmup` — component-wise warm-state construction:
   the icache / d-cache / BPU / BTU training effect of an untimed warm-up
   pass is computed by cheap program-order replays, snapshotted once per
   (workload × config), and restored into every policy's measured pass.
4. :mod:`repro.engine.batch` — :func:`~repro.engine.batch.simulate_batch`:
   one call simulates many (policy × flush-interval × warm-up) points over
   a shared lowering and shared warm state, returning
   :class:`~repro.uarch.core.SimulationResult` objects bit-identical to the
   legacy per-point path.
"""

# Only the dependency-free lowering layer is imported eagerly.  The engine /
# warm-up / batch modules import the unit models from ``repro.uarch``, whose
# own modules import ``repro.engine.lowering`` — an eager import here would
# re-enter the partially-initialized ``repro.uarch`` package and crash, so
# the heavier layers are exposed as lazy (PEP 562) attributes instead.
from repro.engine.lowering import (
    LOWERING_FORMAT_VERSION,
    LoweredTrace,
    lower_dynamic,
    lower_execution,
)

_LAZY_EXPORTS = {
    "run_trace": ("repro.engine.engine", "run_trace"),
    "WarmStateBuilder": ("repro.engine.warmup", "WarmStateBuilder"),
    "BatchStats": ("repro.engine.batch", "BatchStats"),
    "PointSpec": ("repro.engine.batch", "PointSpec"),
    "simulate_batch": ("repro.engine.batch", "simulate_batch"),
}

__all__ = [
    "LOWERING_FORMAT_VERSION",
    "LoweredTrace",
    "lower_dynamic",
    "lower_execution",
    *_LAZY_EXPORTS,
]


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)
