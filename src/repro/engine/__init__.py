"""``repro.engine`` — the columnar simulation engine and its kernel layer.

This package lowers the timing model onto flat integer columns so that the
policy-independent cost of walking a workload's dynamic instruction stream
is paid once per workload instead of once per simulation point, and then
compiles the measured pass itself per (policy × config).

The specialization chain, fastest to most general — **each layer is
required to be bit-identical to the one below it, and the layer below is
always the golden model**::

    native.get_native_kernel()
        │                  the *native* tier (opt-in): the same specialized
        │                  IR rendered to C (repro.engine.emit.c), compiled
        │                  through the system toolchain into a shared
        │                  object, content-addressed in the artifact cache
        │                  so warm runs never compile; degrades point by
        │                  point onto the python tier when no compiler
        │                  works.
        ▼
    emit.columns.run_cohort()
        │                  the NumPy *columns* tier: one vectorized walk
        │                  executes a whole cohort of configs per policy
        │                  (config axes as int64 lanes), engaged only for
        │                  points whose exactness proofs hold; degrades
        │                  to the python tier when NumPy is absent.
        ▼
    kernels.get_kernel()   the *python* tier: generated
        │                  per-(EnginePolicySpec × CoreConfig) kernels over
        │                  flat-array state, lowered from the typed kernel
        │                  IR (repro.engine.ir) by the python emitter:
        │                  geometry constants inlined, dead policy branches
        │                  dropped, cache models deleted under no-eviction
        │                  residency proofs, trace-property statistics
        │                  precomputed.
        ▼
    engine.run_trace()     the *interp* tier: the PR-2 interpreter — one
        │                  generic loop over the columns, object unit
        │                  models, every policy decision a runtime test.
        ▼
    CoreModel.run_reference()
                           the seed object-based loop driving the full
                           DefensePolicy hook protocol — the behavioural
                           reference everything above is tested against.

Tier selection: ``REPRO_ENGINE_TIER=native|columns|python|interp``
(:func:`~repro.engine.kernels.engine_tier`; default ``columns``, which
falls back per point to the python kernels whenever a proof fails, the
cohort is too small, or NumPy is missing; ``native`` likewise falls back
per point when no C toolchain is available).  The measured-pass codegen
itself is split into :mod:`repro.engine.ir` — a typed kernel IR plus the
specialization transforms — and :mod:`repro.engine.emit`, the emitters
that retarget it (``emit.python`` renders kernel source, ``emit.c``
renders C translation units for :mod:`repro.engine.native`,
``emit.columns`` interprets whole cohorts with NumPy).

Layer tour, bottom to top:

1. :mod:`repro.engine.lowering` — :func:`~repro.engine.lowering.lower_execution`
   turns an :class:`~repro.arch.executor.ExecutionResult` into a
   :class:`~repro.engine.lowering.LoweredTrace`: parallel lists of opcode
   latency classes, renamed register indices, memory word addresses, branch
   classes, and a flag bitmask.  **The lowering is policy- and
   config-independent** — one lowering serves every (policy × config ×
   flush-interval) point of a sweep, it is cacheable on disk as the
   ``lowered-trace`` artifact kind, and
   :meth:`~repro.engine.lowering.LoweredTrace.to_bytes` preserializes it for
   the multiprocessing fan-out (and, eventually, cross-host sharding).
2. :mod:`repro.engine.engine` — :func:`~repro.engine.engine.run_trace`
   replays a lowered trace under an
   :class:`~repro.uarch.defenses.base.EnginePolicySpec` with cycle
   accounting bit-identical to the reference loop.
3. :mod:`repro.engine.state` — flat-array models of the
   icache / d-cache hierarchy / BPU / BTU whose snapshot/restore is a
   handful of C-level copies; the object models in :mod:`repro.uarch`
   remain the behavioural source of truth.
4. :mod:`repro.engine.ir` — the typed kernel IR: one
   :func:`~repro.engine.ir.build_kernel_ir` tree per policy family, plus
   the transforms (``specialize`` / ``strip_stats`` / constant folding)
   that burn a (policy spec × config × feature) point into a fully
   resolved tree.  :mod:`repro.engine.emit` holds the emitters over it:
   ``emit.python`` renders the per-point kernel source,
   ``emit.columns`` executes whole config cohorts with NumPy.
5. :mod:`repro.engine.kernels` — :func:`~repro.engine.kernels.get_kernel`
   lowers the IR through the python emitter and ``exec``-compiles one
   measured-pass kernel per (policy spec × config), cached per process.
   ``REPRO_ENGINE_TIER`` (:func:`~repro.engine.kernels.engine_tier`)
   selects the tier; the legacy ``REPRO_ENGINE_KERNELS=off`` spelling
   still maps to the ``interp`` escape hatch.
6. :mod:`repro.engine.warmup` — component-wise warm-state construction:
   the icache / d-cache / BPU / BTU training effect of an untimed warm-up
   pass is computed by cheap program-order replays, snapshotted once per
   (workload × config), and restored into every policy's measured pass —
   as unit-object state for the interpreter, as flat arrays for the
   kernels.  Its residency proofs (``icache_resident`` /
   ``dcache_resident``) license the kernels' cache-free variants.
7. :mod:`repro.engine.batch` — :func:`~repro.engine.batch.simulate_batch`:
   one call simulates many (policy × config × flush-interval × warm-up)
   points over a shared lowering, shared warm state, and shared
   per-workload kernel inputs (plans, premasked columns, BTU payloads),
   deduplicating points whose specs canonicalize identically — returning
   :class:`~repro.uarch.core.SimulationResult` objects bit-identical to the
   legacy per-point path.
"""

# Only the dependency-free lowering layer is imported eagerly.  The engine /
# warm-up / batch modules import the unit models from ``repro.uarch``, whose
# own modules import ``repro.engine.lowering`` — an eager import here would
# re-enter the partially-initialized ``repro.uarch`` package and crash, so
# the heavier layers are exposed as lazy (PEP 562) attributes instead.
from repro.engine.lowering import (
    LOWERING_FORMAT_VERSION,
    LoweredTrace,
    lower_dynamic,
    lower_execution,
)

_LAZY_EXPORTS = {
    "run_trace": ("repro.engine.engine", "run_trace"),
    "WarmStateBuilder": ("repro.engine.warmup", "WarmStateBuilder"),
    "BatchStats": ("repro.engine.batch", "BatchStats"),
    "PointSpec": ("repro.engine.batch", "PointSpec"),
    "simulate_batch": ("repro.engine.batch", "simulate_batch"),
    "FlatState": ("repro.engine.state", "FlatState"),
    "get_kernel": ("repro.engine.kernels", "get_kernel"),
    "kernel_source": ("repro.engine.kernels", "kernel_source"),
    "kernels_enabled": ("repro.engine.kernels", "kernels_enabled"),
    "engine_tier": ("repro.engine.kernels", "engine_tier"),
    "KERNELS_ENV": ("repro.engine.kernels", "KERNELS_ENV"),
    "TIER_ENV": ("repro.engine.kernels", "TIER_ENV"),
    "ENGINE_TIERS": ("repro.engine.kernels", "ENGINE_TIERS"),
}

__all__ = [
    "LOWERING_FORMAT_VERSION",
    "LoweredTrace",
    "lower_dynamic",
    "lower_execution",
    *_LAZY_EXPORTS,
]


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)
