"""``repro.engine`` — the columnar simulation engine and its kernel layer.

This package lowers the timing model onto flat integer columns so that the
policy-independent cost of walking a workload's dynamic instruction stream
is paid once per workload instead of once per simulation point, and then
compiles the measured pass itself per (policy × config).

The specialization chain, fastest to most general — **each layer is
required to be bit-identical to the one below it, and the layer below is
always the golden model**::

    kernels.get_kernel()   generated per-(EnginePolicySpec × CoreConfig)
        │                  Python kernels over flat-array state: geometry
        │                  constants inlined, dead policy branches dropped,
        │                  cache models deleted under no-eviction residency
        │                  proofs, trace-property statistics precomputed.
        ▼
    engine.run_trace()     the PR-2 interpreter: one generic loop over the
        │                  columns, object unit models, every policy
        │                  decision a runtime test.
        ▼
    CoreModel.run_reference()
                           the seed object-based loop driving the full
                           DefensePolicy hook protocol — the behavioural
                           reference everything above is tested against.

Layer tour, bottom to top:

1. :mod:`repro.engine.lowering` — :func:`~repro.engine.lowering.lower_execution`
   turns an :class:`~repro.arch.executor.ExecutionResult` into a
   :class:`~repro.engine.lowering.LoweredTrace`: parallel lists of opcode
   latency classes, renamed register indices, memory word addresses, branch
   classes, and a flag bitmask.  **The lowering is policy- and
   config-independent** — one lowering serves every (policy × config ×
   flush-interval) point of a sweep, it is cacheable on disk as the
   ``lowered-trace`` artifact kind, and
   :meth:`~repro.engine.lowering.LoweredTrace.to_bytes` preserializes it for
   the multiprocessing fan-out (and, eventually, cross-host sharding).
2. :mod:`repro.engine.engine` — :func:`~repro.engine.engine.run_trace`
   replays a lowered trace under an
   :class:`~repro.uarch.defenses.base.EnginePolicySpec` with cycle
   accounting bit-identical to the reference loop.
3. :mod:`repro.engine.state` — flat-array models of the
   icache / d-cache hierarchy / BPU / BTU whose snapshot/restore is a
   handful of C-level copies; the object models in :mod:`repro.uarch`
   remain the behavioural source of truth.
4. :mod:`repro.engine.kernels` — :func:`~repro.engine.kernels.get_kernel`
   generates and ``exec``-compiles one measured-pass kernel per
   (policy spec × config), cached per process.  The
   ``REPRO_ENGINE_KERNELS=off`` environment switch
   (:func:`~repro.engine.kernels.kernels_enabled`) is the escape hatch back
   to ``run_trace``.
5. :mod:`repro.engine.warmup` — component-wise warm-state construction:
   the icache / d-cache / BPU / BTU training effect of an untimed warm-up
   pass is computed by cheap program-order replays, snapshotted once per
   (workload × config), and restored into every policy's measured pass —
   as unit-object state for the interpreter, as flat arrays for the
   kernels.  Its residency proofs (``icache_resident`` /
   ``dcache_resident``) license the kernels' cache-free variants.
6. :mod:`repro.engine.batch` — :func:`~repro.engine.batch.simulate_batch`:
   one call simulates many (policy × config × flush-interval × warm-up)
   points over a shared lowering, shared warm state, and shared
   per-workload kernel inputs (plans, premasked columns, BTU payloads),
   deduplicating points whose specs canonicalize identically — returning
   :class:`~repro.uarch.core.SimulationResult` objects bit-identical to the
   legacy per-point path.
"""

# Only the dependency-free lowering layer is imported eagerly.  The engine /
# warm-up / batch modules import the unit models from ``repro.uarch``, whose
# own modules import ``repro.engine.lowering`` — an eager import here would
# re-enter the partially-initialized ``repro.uarch`` package and crash, so
# the heavier layers are exposed as lazy (PEP 562) attributes instead.
from repro.engine.lowering import (
    LOWERING_FORMAT_VERSION,
    LoweredTrace,
    lower_dynamic,
    lower_execution,
)

_LAZY_EXPORTS = {
    "run_trace": ("repro.engine.engine", "run_trace"),
    "WarmStateBuilder": ("repro.engine.warmup", "WarmStateBuilder"),
    "BatchStats": ("repro.engine.batch", "BatchStats"),
    "PointSpec": ("repro.engine.batch", "PointSpec"),
    "simulate_batch": ("repro.engine.batch", "simulate_batch"),
    "FlatState": ("repro.engine.state", "FlatState"),
    "get_kernel": ("repro.engine.kernels", "get_kernel"),
    "kernel_source": ("repro.engine.kernels", "kernel_source"),
    "kernels_enabled": ("repro.engine.kernels", "kernels_enabled"),
    "KERNELS_ENV": ("repro.engine.kernels", "KERNELS_ENV"),
}

__all__ = [
    "LOWERING_FORMAT_VERSION",
    "LoweredTrace",
    "lower_dynamic",
    "lower_execution",
    *_LAZY_EXPORTS,
]


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)
