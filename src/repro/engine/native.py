"""The native execution tier: compiled C kernels behind the python-kernel ABI.

This module owns everything between :mod:`repro.engine.emit.c` (which renders
one self-contained C translation unit per specialization point) and the batch
layer's kernel call sites:

* **Toolchain discovery** — ``$REPRO_NATIVE_CC`` if set, else the first of
  ``cc`` / ``gcc`` / ``clang`` that can actually produce a loadable shared
  object (probed once per environment value with a trivial test kernel).  No
  working compiler means :func:`get_native_kernel` returns ``None`` and the
  batch layer silently stays on the python kernels.
* **Compiled-artifact caching** — each kernel's ``.so`` bytes are
  content-addressed in the pipeline's :class:`~repro.pipeline.artifacts
  .ArtifactCache` under kind ``native-kernel``, keyed on (source digest ×
  toolchain fingerprint × compiler flags).  Warm runs never invoke the
  compiler: the bytes are materialized into a per-process directory and
  ``dlopen``-ed.  :data:`compile_count` / :data:`compile_seconds` /
  :data:`cache_hits` expose the split to the batch stats and benchmarks.
* **The session bridge** — a compiled kernel is one call
  ``int64_t kernel(int64_t *a)`` over machine addresses
  (:data:`repro.engine.emit.c.ARG_SLOTS`).  :class:`NativeKernel` presents
  the exact python-kernel calling convention
  ``kernel(trace, state, rows, crypto_pcs, plan_cls, plan_stp, interval)``:
  the first call on a :class:`~repro.engine.state.FlatState` packs its
  containers into C-friendly buffers (a *session*, parked on
  ``state.native_session``), warm-up calls chain over the same session
  without any Python-side round trip (the kernels write their persistent
  scalars back into the argument vector), and the stats call unpacks
  everything into the state's dicts/lists, returns the
  :data:`~repro.engine.kernels.DYNAMIC_COUNTERS` dict, and closes the
  session.  ``ReplayMismatchError`` comes back as a nonzero return code and
  is re-raised with byte-identical messages.

Per-trace immutable payloads (columns converted to ``array('q')``, the
flattened BTU replay tables, dense per-PC plan tables) are memoized per
``LoweredTrace`` identity with a ``weakref.finalize`` cleanup, and the large
garbage-tolerant scratch buffers (L2/L3 way tables, the issue-port hash) are
pooled across sessions, so per-point setup cost is proportional to occupied
state, not geometry.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import time
import weakref
from array import array
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.engine.emit.c import (
    ARG,
    ARG_SLOTS,
    C_FLAGS,
    c_kernel_source,
    source_digest,
)
from repro.engine.kernels import DYNAMIC_COUNTERS
from repro.uarch.config import CoreConfig
from repro.uarch.defenses.base import EnginePolicySpec
from repro.uarch.defenses.cassandra import ReplayMismatchError

#: Overrides toolchain discovery with an explicit compiler path/name.  An
#: unresolvable value (``REPRO_NATIVE_CC=/nonexistent``) disables the tier —
#: which is exactly how the degraded-path tests simulate "no compiler".
TOOLCHAIN_ENV = "REPRO_NATIVE_CC"

#: ArtifactCache kind under which compiled ``.so`` bytes are stored.
ARTIFACT_KIND = "native-kernel"

#: Compilers probed, in order, when ``REPRO_NATIVE_CC`` is unset.
DEFAULT_COMPILERS = ("cc", "gcc", "clang")

#: Kernels compiled (not served from the artifact cache) by this process.
compile_count = 0
#: Wall-clock seconds spent inside the C compiler by this process.
compile_seconds = 0.0
#: Compiled kernels served warm — from the artifact cache or the in-process
#: loaded-library table — without invoking the compiler.
cache_hits = 0

#: The last toolchain/compile failure, for operators debugging a silent
#: fallback (``repro.engine.native.last_error``).
last_error: Optional[str] = None

_PROBE_SOURCE = """\
#include <stdint.h>
int64_t kernel(int64_t *a) { return a[0]; }
"""


class NativeCompileError(RuntimeError):
    """A toolchain invocation failed (callers observe ``None``, not this)."""


# --------------------------------------------------------------------------- #
# Toolchain discovery
# --------------------------------------------------------------------------- #
class Toolchain:
    """One probed, working C compiler."""

    __slots__ = ("path", "fingerprint")

    def __init__(self, path: str, fingerprint: str) -> None:
        self.path = path
        self.fingerprint = fingerprint


#: Probe results keyed by the ``REPRO_NATIVE_CC`` value in effect (``""`` for
#: unset), so tests can flip the environment without clearing caches.
_TOOLCHAINS: Dict[str, Optional[Toolchain]] = {}


def _probe_compiler(path: str) -> Optional[Toolchain]:
    """Compile + load a trivial kernel; return a fingerprint on success."""
    global last_error
    tmpdir = tempfile.mkdtemp(prefix="repro-native-probe-")
    try:
        c_path = os.path.join(tmpdir, "probe.c")
        so_path = os.path.join(tmpdir, "probe.so")
        with open(c_path, "w") as handle:
            handle.write(_PROBE_SOURCE)
        proc = subprocess.run(
            [path, *C_FLAGS, "-o", so_path, c_path],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        if proc.returncode != 0:
            last_error = (
                f"probe compile failed for {path!r}: "
                + proc.stderr.decode(errors="replace").strip()
            )
            return None
        lib = ctypes.CDLL(so_path)
        lib.kernel  # the symbol must resolve
        version = subprocess.run(
            [path, "--version"], stdout=subprocess.PIPE, stderr=subprocess.PIPE
        )
        first_line = version.stdout.decode(errors="replace").splitlines()
        fingerprint = f"{os.path.realpath(path)}|{first_line[0] if first_line else ''}"
        return Toolchain(path, fingerprint)
    except OSError as exc:
        last_error = f"probe failed for {path!r}: {exc}"
        return None
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


def find_toolchain() -> Optional[Toolchain]:
    """The working compiler for the current environment, probed once."""
    global last_error
    env = os.environ.get(TOOLCHAIN_ENV, "").strip()
    if env in _TOOLCHAINS:
        return _TOOLCHAINS[env]
    toolchain: Optional[Toolchain] = None
    candidates = (env,) if env else DEFAULT_COMPILERS
    probed = False
    for candidate in candidates:
        path = shutil.which(candidate)
        if path is None:
            continue
        probed = True
        toolchain = _probe_compiler(path)
        if toolchain is not None:
            break
    if toolchain is None and not probed:
        last_error = f"no C compiler resolves (candidates: {', '.join(candidates)})"
    _TOOLCHAINS[env] = toolchain
    return toolchain


def compiler_available() -> bool:
    """Whether the native tier can run here (a probed, working compiler)."""
    return find_toolchain() is not None


# --------------------------------------------------------------------------- #
# Compile + artifact cache + load
# --------------------------------------------------------------------------- #
_ARTIFACTS: Optional[Any] = None

#: Loaded kernel entry points by artifact digest (the ``CDLL`` objects are
#: pinned in ``_LIBS`` — a collected library would leave dangling pointers).
_LOADED: Dict[str, Callable] = {}
_LIBS: Dict[str, ctypes.CDLL] = {}
_SO_DIR: Optional[str] = None

#: ``NativeKernel`` instances (or ``None`` for a memoized failure) keyed like
#: the python kernel cache plus the toolchain fingerprint.
_KERNEL_MEMO: Dict[Tuple, Optional["NativeKernel"]] = {}


def _artifact_cache():
    # Imported lazily: repro.pipeline pulls in the experiment runner, which
    # imports the batch layer, which imports this module.
    from repro.pipeline.artifacts import ArtifactCache, default_cache_dir

    global _ARTIFACTS
    root = default_cache_dir()
    if _ARTIFACTS is None or _ARTIFACTS.root != root:
        _ARTIFACTS = ArtifactCache(root=root)
    return _ARTIFACTS


def _artifact_digest(source: str, toolchain: Toolchain) -> str:
    h = hashlib.sha256()
    h.update(source_digest(source).encode())
    h.update(b"\x00")
    h.update(toolchain.fingerprint.encode())
    h.update(b"\x00")
    h.update(" ".join(C_FLAGS).encode())
    return h.hexdigest()


def _compile_so(source: str, toolchain: Toolchain) -> bytes:
    tmpdir = tempfile.mkdtemp(prefix="repro-native-cc-")
    try:
        c_path = os.path.join(tmpdir, "kernel.c")
        so_path = os.path.join(tmpdir, "kernel.so")
        with open(c_path, "w") as handle:
            handle.write(source)
        proc = subprocess.run(
            [toolchain.path, *C_FLAGS, "-o", so_path, c_path],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        if proc.returncode != 0:
            raise NativeCompileError(
                proc.stderr.decode(errors="replace").strip() or "compiler failed"
            )
        with open(so_path, "rb") as handle:
            return handle.read()
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


def _so_dir() -> str:
    global _SO_DIR
    if _SO_DIR is None:
        _SO_DIR = tempfile.mkdtemp(prefix="repro-native-so-")
    return _SO_DIR


def _load_kernel(digest: str, so_bytes: bytes) -> Callable:
    path = os.path.join(_so_dir(), digest + ".so")
    if not os.path.exists(path):
        temp_path = f"{path}.{os.getpid()}.tmp"
        with open(temp_path, "wb") as handle:
            handle.write(so_bytes)
        os.replace(temp_path, path)
    lib = ctypes.CDLL(path)
    fn = lib.kernel
    fn.restype = ctypes.c_int64
    fn.argtypes = (ctypes.c_void_p,)
    _LIBS[digest] = lib
    return fn


def get_native_kernel(
    spec: EnginePolicySpec,
    config: CoreConfig,
    flush_active: bool,
    icache_resident: bool = False,
    dcache_resident: bool = False,
    btu_elide: bool = False,
    collect_stats: bool = True,
) -> Optional["NativeKernel"]:
    """The compiled native kernel for one specialization point, or ``None``.

    ``None`` (memoized, so a point retries nothing) means the tier cannot
    serve this point — no working compiler, or the toolchain rejected the
    unit — and the caller should fall back to :func:`repro.engine.kernels
    .get_kernel`.  Warm process restarts pay one artifact-cache read per
    kernel, never a compile.
    """
    global compile_count, compile_seconds, cache_hits, last_error
    toolchain = find_toolchain()
    if toolchain is None:
        return None
    key = (
        spec,
        config.digest(),
        bool(flush_active),
        bool(icache_resident),
        bool(dcache_resident),
        bool(btu_elide),
        bool(collect_stats),
        toolchain.fingerprint,
    )
    if key in _KERNEL_MEMO:
        return _KERNEL_MEMO[key]
    kernel: Optional[NativeKernel] = None
    source = c_kernel_source(
        spec,
        config,
        flush_active,
        icache_resident=icache_resident,
        dcache_resident=dcache_resident,
        btu_elide=btu_elide,
        collect_stats=collect_stats,
    )
    digest = _artifact_digest(source, toolchain)
    try:
        fn = _LOADED.get(digest)
        if fn is None:
            so_bytes = _artifact_cache().get(ARTIFACT_KIND, spec.kind, digest)
            if so_bytes is None:
                start = time.perf_counter()
                so_bytes = _compile_so(source, toolchain)
                compile_seconds += time.perf_counter() - start
                compile_count += 1
                _artifact_cache().put(ARTIFACT_KIND, spec.kind, digest, so_bytes)
            else:
                cache_hits += 1
            fn = _load_kernel(digest, so_bytes)
            _LOADED[digest] = fn
        else:
            cache_hits += 1
        kernel = NativeKernel(fn, spec, config, bool(collect_stats), source, digest)
    except (NativeCompileError, OSError) as exc:
        last_error = f"native kernel unavailable for {spec.kind}: {exc}"
        kernel = None
    _KERNEL_MEMO[key] = kernel
    return kernel


def counters_snapshot() -> Tuple[int, float, int]:
    """``(compile_count, compile_seconds, cache_hits)`` — for delta readers."""
    return (compile_count, compile_seconds, cache_hits)


def clear_native_memo() -> None:
    """Drop the per-process kernel memo, trace payloads, and scratch pools.

    Chained from :func:`repro.engine.kernels.clear_kernel_cache` so bench
    per-repetition timing exercises the whole pipeline.  Loaded libraries
    stay mapped (unloading shared objects is unsafe); re-resolving one counts
    as a :data:`cache_hits` warm hit, exactly like an artifact-cache read.
    """
    _KERNEL_MEMO.clear()
    _TRACE_PAYLOADS.clear()
    _SCRATCH.clear()


# --------------------------------------------------------------------------- #
# Address helpers
# --------------------------------------------------------------------------- #
def _addr_of_array(arr: "array") -> int:
    return arr.buffer_info()[0]


def _addr_of_bytes(data: bytes) -> int:
    if not data:
        return 0
    return ctypes.cast(ctypes.c_char_p(data), ctypes.c_void_p).value or 0


def _addr_of_bytearray(data: bytearray, keep: List[Any]) -> int:
    if not data:
        return 0
    view = (ctypes.c_char * len(data)).from_buffer(data)
    keep.append(view)
    return ctypes.addressof(view)


# --------------------------------------------------------------------------- #
# Scratch pool (garbage-tolerant int64 buffers only)
# --------------------------------------------------------------------------- #
_SCRATCH: Dict[int, List["array"]] = {}
_SCRATCH_KEEP = 4


def _scratch_acquire(count: int) -> "array":
    count = max(count, 1)
    pool = _SCRATCH.get(count)
    if pool:
        return pool.pop()
    return array("q", bytes(8 * count))


def _scratch_release(arr: "array") -> None:
    pool = _SCRATCH.setdefault(len(arr), [])
    if len(pool) < _SCRATCH_KEEP:
        pool.append(arr)


# --------------------------------------------------------------------------- #
# Per-trace immutable payloads
# --------------------------------------------------------------------------- #
class _ReplayTables:
    """The flattened BTU replay payload for one ``btu_targets`` family."""

    __slots__ = (
        "targets",  # strong ref — keeps the id() key valid
        "tgt_off",
        "tgt_len",
        "tgt_data",
        "eid_data",
        "btu_long",
        "traced_pcs",
    )


class _TracePayload:
    """Everything immutable the sessions of one ``LoweredTrace`` share."""

    __slots__ = ("n", "num_regs", "max_pc", "cols", "plans", "replays", "ib_mask")


_TRACE_PAYLOADS: Dict[int, _TracePayload] = {}

#: Trace column name → argument-slot name.
_COLUMN_SLOTS = (
    ("pcs", "pcs"),
    ("next_pcs", "npcs"),
    ("mem", "mem"),
    ("bclass", "bcs"),
    ("dst", "dst"),
    ("src0", "src0"),
    ("src1", "src1"),
    ("src2", "src2"),
    ("flags", "flags"),
    ("lat_class", "lat_cls"),
)


def _trace_payload(trace) -> _TracePayload:
    key = id(trace)
    payload = _TRACE_PAYLOADS.get(key)
    if payload is not None:
        return payload
    payload = _TracePayload()
    payload.n = trace.n
    payload.num_regs = trace.num_regs
    payload.max_pc = trace.max_pc
    payload.cols = {
        slot: array("q", getattr(trace, attr)) for attr, slot in _COLUMN_SLOTS
    }
    # Open-addressed issue-port hash sized to load factor ≤ ½ (at most one
    # distinct issue cycle per instruction).
    limit = 2 * (trace.n + 2)
    payload.ib_mask = (1 << (limit - 1).bit_length()) - 1
    payload.plans = {}
    payload.replays = {}
    _TRACE_PAYLOADS[key] = payload
    weakref.finalize(trace, _TRACE_PAYLOADS.pop, key, None)
    return payload


def _plan_tables(
    payload: _TracePayload, plan_cls: bytes, plan_stp: Dict[int, int]
) -> Tuple[bytes, "array"]:
    """Dense single-target table for one (plan_cls, plan_stp) pair."""
    key = (id(plan_cls), id(plan_stp))
    entry = payload.plans.get(key)
    if entry is None:
        dense = array("q", b"\xff" * (8 * (payload.max_pc + 2)))
        for pc, stp in plan_stp.items():
            dense[pc] = stp
        # Strong refs keep both id() keys valid for the payload's lifetime.
        entry = (plan_cls, plan_stp, dense)
        payload.plans[key] = entry
    return entry[0], entry[2]


def _replay_tables(payload: _TracePayload, state) -> _ReplayTables:
    targets = state.btu_targets
    key = id(targets)
    tables = payload.replays.get(key)
    if tables is not None:
        return tables
    eids, long_flags = state.btu_eids, state.btu_long
    size = payload.max_pc + 2
    tables = _ReplayTables()
    tables.targets = targets
    tables.tgt_off = array("q", bytes(8 * size))
    tables.tgt_len = array("q", bytes(8 * size))
    tables.btu_long = bytearray(size)
    tables.traced_pcs = array("q", list(targets))
    data: List[int] = []
    edata: List[int] = []
    for pc, tgts in targets.items():
        tables.tgt_off[pc] = len(data)
        tables.tgt_len[pc] = len(tgts)
        data.extend(tgts)
        if long_flags.get(pc):
            tables.btu_long[pc] = 1
            edata.extend(eids[pc][: len(tgts)])
        else:
            edata.extend([0] * len(tgts))
    tables.tgt_data = array("q", data)
    tables.eid_data = array("q", edata)
    payload.replays[key] = tables
    return tables


# --------------------------------------------------------------------------- #
# The per-point session
# --------------------------------------------------------------------------- #
class _Session:
    """Live C views over one :class:`FlatState`, reused warm → measured."""

    __slots__ = (
        "trace",
        "a",
        "address",
        "keep",
        "traced",
        "btb_cap",
        "rsb_cap",
        "btb_val",
        "btb_fifo",
        "rsb_buf",
        "loop_run",
        "loop_trip",
        "loop_conf",
        "loop_keys",
        "loop_seeded",
        "btu_dense",
        "res_buf",
        "l2_geom",
        "l3_geom",
        "l2_cnt",
        "l2_data",
        "l2_occ",
        "l2_seeded",
        "l3_cnt",
        "l3_data",
        "l3_occ",
        "l3_seeded",
        "scratch",
    )

    # ------------------------------------------------------------------ #
    # Teardown
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        for arr in self.scratch:
            _scratch_release(arr)
        self.scratch = []
        self.keep = []

    def unpack(self, state) -> None:
        """Write every kernel-visible mutation back into ``state``."""
        a = self.a
        state.history = a[ARG["history"]]
        # BTB: the FIFO ring holds exactly the live keys in insertion order,
        # which is the dict order the python kernels maintain.
        btb: Dict[int, int] = {}
        cap = self.btb_cap
        if cap:
            head = a[ARG["btb_head"]]
            val, fifo = self.btb_val, self.btb_fifo
            for k in range(a[ARG["btb_count"]]):
                pc = fifo[(head + k) % cap]
                btb[pc] = val[pc]
        state.btb = btb
        rsb: List[int] = []
        cap = self.rsb_cap
        if cap:
            head = a[ARG["rsb_head"]]
            buf = self.rsb_buf
            for k in range(a[ARG["rsb_len"]]):
                rsb.append(buf[(head + k) % cap])
        state.rsb = rsb
        # Loop predictor: seeded entries keep their insertion order, new
        # entries come from the creation journal — no dense-table scan.
        run, trip, conf = self.loop_run, self.loop_trip, self.loop_conf
        loops: Dict[int, List[int]] = {}
        for pc in self.loop_seeded:
            loops[pc] = [run[pc], trip[pc], conf[pc]]
        keys = self.loop_keys
        for k in range(a[ARG["loop_n"]]):
            pc = keys[k]
            loops[pc] = [run[pc], trip[pc], conf[pc]]
        state.loops = loops
        if self.traced:
            dense = self.btu_dense
            state.btu_pos = {pc: dense[pc] for pc in state.btu_pos}
            res = self.res_buf
            state.btu_resident = [res[k] for k in range(a[ARG["res_len"]])]
        state.l2 = self._unpack_level(
            self.l2_seeded, self.l2_cnt, self.l2_data, self.l2_occ,
            a[ARG["l2_occ_n"]], self.l2_geom[1],
        )
        state.l3 = self._unpack_level(
            self.l3_seeded, self.l3_cnt, self.l3_data, self.l3_occ,
            a[ARG["l3_occ_n"]], self.l3_geom[1],
        )

    @staticmethod
    def _unpack_level(seeded, cnt, data, occ, occ_n, assoc) -> Dict[int, List[int]]:
        # Seeded sets can never re-enter the journal (way counts only grow),
        # so the two passes are disjoint and the order — seeded first, then
        # creation order — is the python dict's insertion order.
        sets: Dict[int, List[int]] = {}
        for index in seeded:
            base = index * assoc
            sets[index] = list(data[base : base + cnt[index]])
        for k in range(occ_n):
            index = occ[k]
            base = index * assoc
            sets[index] = list(data[base : base + cnt[index]])
        return sets


def _open_session(
    kernel: "NativeKernel",
    trace,
    state,
    crypto_pcs: bytes,
    plan_cls: bytes,
    plan_stp: Dict[int, int],
    flush_interval: Optional[int],
) -> _Session:
    payload = _trace_payload(trace)
    config = kernel.config
    spec = kernel.spec
    size = payload.max_pc + 2
    cassandra = spec.kind == "cassandra"
    traced = cassandra and not spec.lite

    session = _Session()
    session.trace = trace
    session.traced = traced
    session.keep = []
    session.scratch = []
    keep = session.keep
    a = array("q", bytes(8 * len(ARG_SLOTS)))
    session.a = a
    session.address = _addr_of_array(a)
    keep.append(state)

    def scratch(count: int) -> "array":
        arr = _scratch_acquire(count)
        session.scratch.append(arr)
        return arr

    # ----------------------------- scalars ----------------------------- #
    a[ARG["n"]] = payload.n
    a[ARG["num_regs"]] = payload.num_regs
    a[ARG["flush_interval"]] = flush_interval or 0
    a[ARG["history"]] = state.history
    a[ARG["crypto_pcs_len"]] = len(crypto_pcs)
    a[ARG["btb_count"]] = len(state.btb)
    a[ARG["rsb_len"]] = len(state.rsb)
    a[ARG["ib_mask"]] = payload.ib_mask

    # -------------------------- trace columns -------------------------- #
    for slot, col in payload.cols.items():
        a[ARG[slot]] = _addr_of_array(col)
    keep.append(payload)

    # ---------------------- per-workload tables ------------------------ #
    if cassandra:
        a[ARG["crypto_pcs"]] = _addr_of_bytes(crypto_pcs)
        a[ARG["plan_cls"]] = _addr_of_bytes(plan_cls)
        keep.append(crypto_pcs)
        keep.append(plan_cls)
        if not spec.lite:
            _, stp_dense = _plan_tables(payload, plan_cls, plan_stp)
            a[ARG["plan_stp"]] = _addr_of_array(stp_dense)
    if traced:
        tables = _replay_tables(payload, state)
        a[ARG["traced_pcs"]] = _addr_of_array(tables.traced_pcs)
        a[ARG["n_traced"]] = len(tables.traced_pcs)
        a[ARG["tgt_off"]] = _addr_of_array(tables.tgt_off)
        a[ARG["tgt_len"]] = _addr_of_array(tables.tgt_len)
        a[ARG["tgt_data"]] = _addr_of_array(tables.tgt_data)
        a[ARG["eid_data"]] = _addr_of_array(tables.eid_data)
        a[ARG["btu_long"]] = _addr_of_bytearray(tables.btu_long, keep)
        keep.append(tables)

    # ------------------------ mutable state ----------------------------- #
    # L1I / L1D / PHT are the state's own array('q') buffers, mutated in
    # place — no pack, no unpack.
    a[ARG["l1i"]] = _addr_of_array(state.l1i)
    a[ARG["l1d"]] = _addr_of_array(state.l1d)
    a[ARG["pht"]] = _addr_of_array(state.pht)

    session.btb_cap = config.btb_entries
    btb_val = array("q", b"\xff" * (8 * size))
    btb_fifo = scratch(config.btb_entries)
    for slot, (pc, target) in enumerate(state.btb.items()):
        btb_val[pc] = target
        btb_fifo[slot] = pc
    session.btb_val = btb_val
    session.btb_fifo = btb_fifo
    a[ARG["btb_val"]] = _addr_of_array(btb_val)
    a[ARG["btb_fifo"]] = _addr_of_array(btb_fifo)
    keep.append(btb_val)

    session.rsb_cap = config.rsb_entries
    rsb_buf = scratch(config.rsb_entries)
    for slot, value in enumerate(state.rsb):
        rsb_buf[slot] = value
    session.rsb_buf = rsb_buf
    a[ARG["rsb_buf"]] = _addr_of_array(rsb_buf)

    loop_run = scratch(size)
    loop_trip = scratch(size)
    loop_conf = scratch(size)
    loop_keys = scratch(size)
    loop_present = bytearray(size)
    for pc, row in state.loops.items():
        loop_present[pc] = 1
        loop_run[pc], loop_trip[pc], loop_conf[pc] = row
    session.loop_run = loop_run
    session.loop_trip = loop_trip
    session.loop_conf = loop_conf
    session.loop_keys = loop_keys
    session.loop_seeded = list(state.loops)
    a[ARG["loop_run"]] = _addr_of_array(loop_run)
    a[ARG["loop_trip"]] = _addr_of_array(loop_trip)
    a[ARG["loop_conf"]] = _addr_of_array(loop_conf)
    a[ARG["loop_keys"]] = _addr_of_array(loop_keys)
    a[ARG["loop_present"]] = _addr_of_bytearray(loop_present, keep)
    keep.append(loop_present)

    if traced:
        btu_dense = scratch(size)
        for pc, position in state.btu_pos.items():
            btu_dense[pc] = position
        session.btu_dense = btu_dense
        a[ARG["btu_pos"]] = _addr_of_array(btu_dense)
        res_buf = scratch(config.btu.entries)
        for slot, pc in enumerate(state.btu_resident):
            res_buf[slot] = pc
        a[ARG["res_len"]] = len(state.btu_resident)
        session.res_buf = res_buf
        a[ARG["res_buf"]] = _addr_of_array(res_buf)
    else:
        session.btu_dense = None
        session.res_buf = None

    for level, cfg, sparse in (
        ("l2", config.l2, state.l2),
        ("l3", config.l3, state.l3),
    ):
        assoc = cfg.associativity
        cnt = array("q", bytes(8 * cfg.num_sets))
        data = scratch(cfg.num_sets * assoc)
        occ = scratch(cfg.num_sets)
        for index, ways in sparse.items():
            cnt[index] = len(ways)
            base = index * assoc
            data[base : base + len(ways)] = array("q", ways)
        setattr(session, f"{level}_geom", (cfg.num_sets, assoc))
        setattr(session, f"{level}_cnt", cnt)
        setattr(session, f"{level}_data", data)
        setattr(session, f"{level}_occ", occ)
        setattr(session, f"{level}_seeded", list(sparse))
        a[ARG[f"{level}_cnt"]] = _addr_of_array(cnt)
        a[ARG[f"{level}_data"]] = _addr_of_array(data)
        a[ARG[f"{level}_occ"]] = _addr_of_array(occ)
        keep.append(cnt)

    # --------------------------- scratch ------------------------------- #
    a[ARG["reg_ready"]] = _addr_of_array(scratch(payload.num_regs + 2))
    a[ARG["ib_keys"]] = _addr_of_array(scratch(payload.ib_mask + 1))
    a[ARG["ib_vals"]] = _addr_of_array(scratch(payload.ib_mask + 1))
    return session


# --------------------------------------------------------------------------- #
# The callable
# --------------------------------------------------------------------------- #
class NativeKernel:
    """One compiled kernel behind the python-kernel calling convention.

    ``rows`` is accepted and ignored — the flag premask is compiled into the
    C loop, so native points skip the batch layer's pre-zipped row tuples
    entirely.
    """

    __slots__ = ("fn", "spec", "config", "collect_stats", "digest", "__repro_source__")

    def __init__(self, fn, spec, config, collect_stats, source, digest) -> None:
        self.fn = fn
        self.spec = spec
        self.config = config
        self.collect_stats = collect_stats
        self.digest = digest
        self.__repro_source__ = source

    def __call__(
        self,
        trace,
        state,
        rows,
        crypto_pcs: bytes,
        plan_cls: bytes,
        plan_stp: Dict[int, int],
        btu_flush_interval: Optional[int],
    ) -> Optional[Dict[str, int]]:
        session = state.native_session
        if session is None or session.trace is not trace:
            session = _open_session(
                self, trace, state, crypto_pcs, plan_cls, plan_stp,
                btu_flush_interval,
            )
            state.native_session = session
        code = self.fn(session.address)
        if code:
            state.native_session = None
            a = session.a
            err_pc, err_b, err_c = a[ARG["err_a"]], a[ARG["err_b"]], a[ARG["err_c"]]
            session.close()
            if code == 1:
                raise ReplayMismatchError(
                    "single-target hint for PC %d points at %r but "
                    "execution went to %d" % (err_pc, err_b, err_c)
                )
            raise ReplayMismatchError(
                "BTU replay for PC %d produced target %d but the "
                "sequential execution went to %d" % (err_pc, err_b, err_c)
            )
        if not self.collect_stats:
            return None
        a = session.a
        counters = {
            name: a[ARG["counter_" + name]] for name in DYNAMIC_COUNTERS
        }
        session.unpack(state)
        state.native_session = None
        session.close()
        return counters
