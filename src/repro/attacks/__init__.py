"""Spectre-style attack gadgets and the Table 2 security scenarios."""

from repro.attacks.detector import transient_leak_detected
from repro.attacks.spectre_v1 import build_listing1_program, listing1_attacker, run_listing1_attack
from repro.attacks.gadgets import ScenarioResult, build_scenario_program, evaluate_scenarios

__all__ = [
    "transient_leak_detected",
    "build_listing1_program",
    "listing1_attacker",
    "run_listing1_attack",
    "ScenarioResult",
    "build_scenario_program",
    "evaluate_scenarios",
]
