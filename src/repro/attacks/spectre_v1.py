"""The paper's Listing 1: leaking a secret by skipping a decryption loop.

The constant-time program loads a secret message, runs it through a fixed
number of decryption rounds, declassifies the result, and only then transmits
it.  Sequentially this is secure; a Spectre adversary who makes the loop
branch mispredict on its first iteration transiently skips the decryption
rounds and transmits the raw secret.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.attacks.detector import transient_leak_detected
from repro.formal.speculative import AttackerStrategy
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Instruction
from repro.isa.program import Program

NUM_ROUNDS = 4
ROUND_KEY = 0x5A


def build_listing1_program() -> Tuple[Program, int]:
    """Build the Listing 1 program; returns (program, secret address)."""
    b = ProgramBuilder("listing1")
    secret_addr = b.alloc_secret("message", [0xC0FFEE])
    key_addr = b.alloc("round_keys", [ROUND_KEY] * NUM_ROUNDS)

    with b.crypto():
        state, addr, key, i = b.regs("state", "addr", "key", "i")
        b.movi(addr, secret_addr)
        b.load(state, addr)
        with b.for_range(i, 0, NUM_ROUNDS):
            b.movi(addr, key_addr)
            b.add(addr, addr, i)
            b.load(key, addr)
            b.xor(state, state, key)
        b.declassify(state)
        b.leak(state)
    b.halt()
    return b.build(), secret_addr


def listing1_attacker(program: Program) -> AttackerStrategy:
    """Steer the decryption loop's head branch straight to the loop exit."""
    loop_branch_pc: Optional[int] = None
    for pc in program.static_branches():
        instruction = program.fetch(pc)
        if instruction.is_conditional:
            loop_branch_pc = pc
            break
    if loop_branch_pc is None:  # pragma: no cover - defensive
        raise ValueError("listing1 program has no conditional branch")
    exit_pc = int(program.fetch(loop_branch_pc).imm)

    def attacker(pc: int, instruction: Instruction, correct_next: int) -> Optional[int]:
        if pc == loop_branch_pc and correct_next != exit_pc:
            return exit_pc
        return None

    return attacker


def run_listing1_attack(mode: str = "unsafe") -> bool:
    """Run the attack under ``mode``; returns True when the secret leaks."""
    program, secret_addr = build_listing1_program()
    attacker = listing1_attacker(program)
    return transient_leak_detected(
        program,
        {secret_addr: 0xC0FFEE},
        {secret_addr: 0xDEAD01},
        mode=mode,
        attacker=attacker,
    )
