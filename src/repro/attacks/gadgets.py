"""The eight control-flow scenarios of Figure 6 / Table 2.

One program contains a crypto branch (``BR1``), a non-crypto branch
(``BR2``), and four leak gadgets: a crypto register-leak gadget (``R1``), a
crypto memory-leak gadget (``M1``), a non-crypto register-leak gadget
(``R2``), and a non-crypto memory-leak gadget (``M2``, reading a secret
address — the software-isolation case).  Each scenario steers one branch to
one gadget and asks whether the attacker-visible trace then depends on the
secret, under both the unsafe and the Cassandra semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.attacks.detector import transient_leak_detected
from repro.formal.speculative import AttackerStrategy
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Instruction
from repro.isa.program import Program


@dataclass
class ScenarioProgram:
    """The gadget program plus the PCs/addresses the scenarios reference."""

    program: Program
    secret_addr: int
    branch_pcs: Dict[str, int]
    gadget_pcs: Dict[str, int]

    def inputs(self) -> Tuple[Dict[int, int], Dict[int, int]]:
        return {self.secret_addr: 0x51, self.secret_addr + 1: 0xA7}, {
            self.secret_addr: 0xE3,
            self.secret_addr + 1: 0x19,
        }


@dataclass
class ScenarioResult:
    """Outcome of one Table 2 scenario."""

    scenario: int
    transition: str
    description: str
    leaks_unsafe: bool
    leaks_cassandra: bool
    expected_mechanism: str


def build_scenario_program() -> ScenarioProgram:
    """Build the shared gadget program."""
    b = ProgramBuilder("table2-gadgets")
    secret_addr = b.alloc_secret("secret_region", [0x51, 0xA7])
    public_addr = b.alloc("public_region", [7, 9])

    branch_pcs: Dict[str, int] = {}
    gadget_pcs: Dict[str, int] = {}

    # -------------------- crypto code -------------------- #
    with b.crypto():
        r1, r2, addr, cond = b.regs("r1", "r2", "addr", "cond")
        # Load the secret non-speculatively (as constant-time code does).
        b.movi(addr, secret_addr)
        b.load(r1, addr)
        # BR1: a crypto conditional branch on public data.  The condition is
        # non-zero, so the branch falls through sequentially and the gadget
        # blocks below are only reachable transiently.
        b.movi(cond, 1)
        skip_crypto_gadgets = b.label("skip_crypto_gadgets")
        branch_pcs["BR1"] = b.beqz(cond, skip_crypto_gadgets)
        # Fall-through is the sequential path: the crypto routine finishes and
        # leaves only public (declassified) data in r1 before handing control
        # to non-crypto code.
        b.movi(r1, 0x42)
        b.jmp(skip_crypto_gadgets)
        # R1: crypto register-leak gadget (transient-only target).
        gadget_pcs["R1"] = b.leak(r1)
        b.jmp(skip_crypto_gadgets)
        # M1: crypto memory-leak gadget: loads and transmits the secret region.
        m1_base = b.reg("m1_base")
        m1_val = b.reg("m1_val")
        gadget_pcs["M1"] = b.movi(m1_base, secret_addr)
        b.load(m1_val, m1_base)
        b.leak(m1_val)
        b.jmp(skip_crypto_gadgets)
        b.place(skip_crypto_gadgets)
        b.declassify(r1)

    # ------------------ non-crypto code ------------------ #
    r4, addr2, cond2 = b.regs("r4", "addr2", "cond2")
    b.movi(addr2, public_addr)
    b.load(r4, addr2)
    skip_plain_gadgets = b.label("skip_plain_gadgets")
    b.movi(cond2, 0)
    branch_pcs["BR2"] = b.beqz(cond2, skip_plain_gadgets)  # not taken sequentially
    b.add(r4, r4, 1)
    b.jmp(skip_plain_gadgets)
    # R2: non-crypto register-leak gadget (leaks public data).
    gadget_pcs["R2"] = b.leak(r4)
    b.jmp(skip_plain_gadgets)
    # M2: non-crypto memory-leak gadget reading the secret region
    # (a software-isolation violation, out of Cassandra's scope).
    m2_base, m2_val = b.regs("m2_base", "m2_val")
    gadget_pcs["M2"] = b.movi(m2_base, secret_addr)
    b.load(m2_val, m2_base, 1)
    b.leak(m2_val)
    b.jmp(skip_plain_gadgets)
    b.place(skip_plain_gadgets)
    b.halt()

    return ScenarioProgram(
        program=b.build(),
        secret_addr=secret_addr,
        branch_pcs=branch_pcs,
        gadget_pcs=gadget_pcs,
    )


def _steer(branch_pc: int, target_pc: int) -> AttackerStrategy:
    def attacker(pc: int, instruction: Instruction, correct_next: int) -> Optional[int]:
        if pc == branch_pc and correct_next != target_pc:
            return target_pc
        return None

    return attacker


#: (scenario number, branch, gadget, description, expected mechanism).
SCENARIOS: Tuple[Tuple[int, str, str, str, str], ...] = (
    (1, "BR1", "R1", "crypto register leak after a crypto branch", "BTU enforces sequential flow"),
    (2, "BR1", "M1", "crypto memory leak after a crypto branch", "BTU enforces sequential flow"),
    (3, "BR1", "R2", "non-crypto register leak after a crypto branch", "BTU enforces sequential flow"),
    (4, "BR1", "M2", "non-crypto memory leak after a crypto branch", "BTU enforces sequential flow"),
    (5, "BR2", "M1", "crypto memory leak after a non-crypto branch", "crypto PC range integrity check"),
    (6, "BR2", "R1", "crypto register leak after a non-crypto branch", "integrity check; register already declassified"),
    (7, "BR2", "R2", "non-crypto register leak after a non-crypto branch", "speculation allowed (no secret involved)"),
    (8, "BR2", "M2", "non-crypto memory leak after a non-crypto branch", "out of scope (software isolation)"),
)


def evaluate_scenarios(speculation_window: int = 16) -> List[ScenarioResult]:
    """Run all eight scenarios under both semantics (the Table 2 evidence)."""
    scenario_program = build_scenario_program()
    input_a, input_b = scenario_program.inputs()
    results: List[ScenarioResult] = []
    for number, branch, gadget, description, mechanism in SCENARIOS:
        attacker = _steer(
            scenario_program.branch_pcs[branch], scenario_program.gadget_pcs[gadget]
        )
        leaks_unsafe = transient_leak_detected(
            scenario_program.program,
            input_a,
            input_b,
            mode="unsafe",
            attacker=attacker,
            speculation_window=speculation_window,
        )
        leaks_cassandra = transient_leak_detected(
            scenario_program.program,
            input_a,
            input_b,
            mode="cassandra",
            attacker=attacker,
            speculation_window=speculation_window,
        )
        results.append(
            ScenarioResult(
                scenario=number,
                transition=f"{branch} -> {gadget}",
                description=description,
                leaks_unsafe=leaks_unsafe,
                leaks_cassandra=leaks_cassandra,
                expected_mechanism=mechanism,
            )
        )
    return results
