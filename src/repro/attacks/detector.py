"""Leak detection: does the attacker-visible trace depend on the secret?

A program leaks under a given machine mode and attacker strategy when two
runs that differ only in their confidential inputs produce different
attacker-visible hardware traces (the negation of the contract-satisfaction
property of Definition 3).
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.formal.speculative import AttackerStrategy, hardware_trace
from repro.isa.program import Program


def transient_leak_detected(
    program: Program,
    secret_input_a: Mapping[int, int],
    secret_input_b: Mapping[int, int],
    mode: str = "unsafe",
    attacker: Optional[AttackerStrategy] = None,
    speculation_window: int = 48,
) -> bool:
    """True when the attacker can distinguish the two secret inputs."""
    trace_a = hardware_trace(
        program, secret_input_a, mode=mode, attacker=attacker, speculation_window=speculation_window
    )
    trace_b = hardware_trace(
        program, secret_input_b, mode=mode, attacker=attacker, speculation_window=speculation_window
    )
    return trace_a != trace_b
