"""Deterministic test harnesses (fault injection) for the service stack."""

from repro.testing.faults import (
    DIE_STATUS,
    FAULT_PLAN_ENV,
    Fault,
    FaultPlan,
    InjectedFault,
    activate,
    activate_from_env,
)

__all__ = [
    "DIE_STATUS",
    "FAULT_PLAN_ENV",
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "activate",
    "activate_from_env",
]
