"""Deterministic fault injection for the service stack.

Waiting for real networks and real crashes makes failure-path tests flaky
and slow; this module makes failure *scheduled*.  A :class:`FaultPlan` is a
list of :class:`Fault` points — (site, visit index, action) — installed as a
process-wide hook that the framing layer (``repro.api.shard.write_frame`` /
``read_frame``), the shard worker loop, and the artifact cache's ``put``
consult on every visit.  The Nth visit of a site fires the matching fault;
every other visit is free.  Because sites are visited in a deterministic
order for a deterministic workload, the same plan produces the same failure
at the same point every run — the chaos suite (``tests/api/test_chaos.py``)
replays each plan and asserts recovery, byte-identical tables, or a typed
error, never a hang.

Sites:

``frame-write``
    Before a length-prefixed frame is written (pipes and sockets alike).
    Supports ``reset`` (raise :class:`ConnectionResetError` before any
    bytes), ``truncate`` (write the full-length header but only half the
    payload, then reset — the peer sees a torn frame), ``delay``, ``die``,
    ``crash``.
``frame-read``
    Before a frame header is read.  ``reset``/``delay``/``die``/``crash``.
``worker-task``
    In the shard worker loop, before executing a received task.
    ``die`` (``os._exit``) models a worker crash mid-task; ``crash`` raises
    inside the worker; ``delay`` stalls it.
``cache-put``
    Between the artifact cache's temp-file write and its atomic rename —
    the window a crash must not corrupt.  ``crash``/``die``/``delay``.
``cache-stored``
    After the rename.  ``corrupt`` truncates the just-stored entry in
    place, modeling torn disk writes the cache must quarantine on read.
``gateway-request``
    At the top of the HTTP gateway's request dispatch, before routing.
    ``crash`` surfaces as a typed 500 to the client; ``die`` models the
    gateway process dying mid-request (the chaos suite's kill vector);
    ``delay`` stalls the request.
``store-write``
    Before a :class:`~repro.api.gateway.store.GatewayStore` write
    executes+commits.  ``crash``/``die`` model dying ahead of the commit —
    the acknowledged store state must be exactly what it was.
``warehouse-write``
    Before a :class:`~repro.warehouse.store.WarehouseStore` upsert
    executes+commits.  ``die`` mid-ingest models losing warehouse rows the
    journal already has — the journal-driven resume must re-ingest to an
    identical store (idempotent upserts make the replay safe).

Plans cross process boundaries via the :data:`FAULT_PLAN_ENV` environment
variable: :func:`activate` (optionally) exports the plan as JSON, and the
shard/remote worker entry points call :func:`activate_from_env` so
subprocess workers inject the same schedule.  Visit counters are
per-process, which keeps single-worker scenarios exactly deterministic and
multi-worker scenarios deterministic per worker.
"""

from __future__ import annotations

import contextlib
import json
import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

#: Environment variable carrying a JSON-encoded plan into worker processes.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Exit status of a ``die`` fault, distinguishable from real crashes.
DIE_STATUS = 53

SITES = (
    "frame-write",
    "frame-read",
    "worker-task",
    "cache-put",
    "cache-stored",
    "gateway-request",
    "store-write",
    "warehouse-write",
)
ACTIONS = ("reset", "truncate", "delay", "die", "crash", "corrupt")


class InjectedFault(RuntimeError):
    """A fault fired by a :class:`FaultPlan` (the typed, expected error)."""


@dataclass(frozen=True)
class Fault:
    """Fire ``action`` on the ``index``-th visit (0-based) of ``site``."""

    site: str
    index: int
    action: str
    delay: float = 0.05

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r} (have {SITES})")
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r} (have {ACTIONS})")

    def as_dict(self) -> dict:
        return {
            "site": self.site,
            "index": self.index,
            "action": self.action,
            "delay": self.delay,
        }


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults, replayable across processes."""

    faults: Tuple[Fault, ...] = ()

    @classmethod
    def scripted(cls, *faults: Fault) -> "FaultPlan":
        """Exactly these faults, at exactly these visit indices."""
        return cls(faults=tuple(faults))

    @classmethod
    def seeded(
        cls,
        seed: int,
        site: str,
        action: str,
        count: int = 1,
        max_index: int = 24,
        delay: float = 0.05,
    ) -> "FaultPlan":
        """``count`` faults at seed-chosen visit indices below ``max_index``."""
        rng = random.Random(seed)
        indices = sorted(rng.sample(range(max_index), min(count, max_index)))
        return cls(faults=tuple(Fault(site, index, action, delay) for index in indices))

    def to_json(self) -> str:
        return json.dumps(
            {"version": 1, "faults": [fault.as_dict() for fault in self.faults]},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        return cls(
            faults=tuple(
                Fault(
                    site=str(entry["site"]),
                    index=int(entry["index"]),
                    action=str(entry["action"]),
                    delay=float(entry.get("delay", 0.05)),
                )
                for entry in payload.get("faults", ())
            )
        )


class ActivePlan:
    """A plan armed in this process: per-site visit counters + fired log."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._visits = {site: 0 for site in SITES}
        #: Faults that actually fired, for test assertions.
        self.fired: List[Fault] = []

    def visits(self, site: str) -> int:
        with self._lock:
            return self._visits[site]

    # ------------------------------------------------------------------ #
    # The hook installed at every instrumented site
    # ------------------------------------------------------------------ #
    def trip(self, site: str, **context: Any) -> None:
        with self._lock:
            index = self._visits[site]
            self._visits[site] = index + 1
            fault = next(
                (f for f in self.plan.faults if f.site == site and f.index == index),
                None,
            )
            if fault is not None:
                self.fired.append(fault)
        if fault is None:
            return
        self._fire(fault, context)

    def _fire(self, fault: Fault, context: dict) -> None:
        if fault.action == "delay":
            time.sleep(fault.delay)
            return
        if fault.action == "die":
            os._exit(DIE_STATUS)
        if fault.action == "crash":
            raise InjectedFault(
                f"injected crash at {fault.site}[{fault.index}]"
            )
        if fault.action == "reset":
            raise ConnectionResetError(
                f"injected reset at {fault.site}[{fault.index}]"
            )
        if fault.action == "truncate":
            self._truncate_frame(fault, context)
            return
        if fault.action == "corrupt":
            self._corrupt_file(fault, context)
            return

    @staticmethod
    def _truncate_frame(fault: Fault, context: dict) -> None:
        """Emit a torn frame: true length header, half the payload, reset."""
        stream = context.get("stream")
        payload = context.get("payload")
        if stream is None or payload is None:
            raise ConnectionResetError(
                f"injected reset at {fault.site}[{fault.index}] (no stream to tear)"
            )
        from repro.api.shard import _HEADER

        with contextlib.suppress(OSError, ValueError):
            stream.write(_HEADER.pack(len(payload)))
            stream.write(payload[: max(1, len(payload) // 2)])
            stream.flush()
        raise ConnectionResetError(
            f"injected mid-frame truncation at {fault.site}[{fault.index}]"
        )

    @staticmethod
    def _corrupt_file(fault: Fault, context: dict) -> None:
        path = context.get("path")
        if not path or not os.path.exists(path):
            return
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(max(1, size // 2))


def _install(active: Optional[ActivePlan]) -> None:
    from repro.api import shard
    from repro.api.gateway import http as gateway_http
    from repro.api.gateway import store as gateway_store
    from repro.pipeline import artifacts
    from repro.warehouse import store as warehouse_store

    hook = active.trip if active is not None else None
    shard.FAULT_HOOK = hook
    artifacts.FAULT_HOOK = hook
    gateway_http.FAULT_HOOK = hook
    gateway_store.FAULT_HOOK = hook
    warehouse_store.FAULT_HOOK = hook


@contextlib.contextmanager
def activate(plan: FaultPlan, env: bool = False) -> Iterator[ActivePlan]:
    """Arm ``plan`` in this process; with ``env=True`` export it so
    subprocess workers spawned while armed inject the same schedule."""
    active = ActivePlan(plan)
    _install(active)
    had_env = os.environ.get(FAULT_PLAN_ENV)
    if env:
        os.environ[FAULT_PLAN_ENV] = plan.to_json()
    try:
        yield active
    finally:
        _install(None)
        if env:
            if had_env is None:
                os.environ.pop(FAULT_PLAN_ENV, None)
            else:
                os.environ[FAULT_PLAN_ENV] = had_env


def activate_from_env() -> Optional[ActivePlan]:
    """Arm the plan from :data:`FAULT_PLAN_ENV`, if any (worker entry)."""
    text = os.environ.get(FAULT_PLAN_ENV)
    if not text:
        return None
    try:
        plan = FaultPlan.from_json(text)
    except (ValueError, KeyError, TypeError):
        return None
    active = ActivePlan(plan)
    _install(active)
    return active
