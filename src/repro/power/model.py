"""Event-driven analytical power/area model for the simulated core."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.uarch.config import CoreConfig, GOLDEN_COVE_LIKE
from repro.uarch.stats import PipelineStats

#: Relative area of each unit in the baseline core (fractions of total = 1.0).
BASELINE_AREA_FRACTIONS: Dict[str, float] = {
    "instruction_fetch_unit": 0.22,
    "renaming_unit": 0.10,
    "load_store_unit": 0.26,
    "execution_unit": 0.42,
}

#: The BTU's area relative to the baseline total (the paper reports 1.26%).
BTU_AREA_FRACTION = 0.0126

#: Dynamic energy per event (arbitrary energy units, calibrated for shape).
ENERGY_PER_EVENT: Dict[str, float] = {
    "fetch": 1.0,          # per fetched instruction (IFU datapath + ICache)
    "bpu_access": 5.0,     # per BPU lookup or update (large LTAGE-class tables)
    "btu_access": 1.0,     # per BTU lookup (small direct-mapped tables)
    "rename": 0.8,         # per renamed instruction
    "lsu": 2.2,            # per load/store
    "execute": 1.6,        # per issued instruction
    "squash": 0.8,         # per squash cycle (wasted frontend/backend work)
}

#: Leakage power per unit of area, as a fraction of typical dynamic power.
LEAKAGE_PER_AREA = 18.0


@dataclass
class PowerReport:
    """Per-unit and total power for one simulation."""

    per_unit: Dict[str, float]
    total: float

    def normalized_to(self, baseline: "PowerReport") -> Dict[str, float]:
        """Each unit (and the total) as a fraction of the baseline total."""
        result = {unit: value / baseline.total for unit, value in self.per_unit.items()}
        result["total"] = self.total / baseline.total
        return result


@dataclass
class AreaReport:
    """Per-unit and total area."""

    per_unit: Dict[str, float]
    total: float

    def normalized_to(self, baseline: "AreaReport") -> Dict[str, float]:
        result = {unit: value / baseline.total for unit, value in self.per_unit.items()}
        result["total"] = self.total / baseline.total
        return result


class PowerAreaModel:
    """Compute power/area for a simulation under a given configuration."""

    def __init__(self, config: CoreConfig = GOLDEN_COVE_LIKE) -> None:
        self.config = config

    # ------------------------------------------------------------------ #
    # Area
    # ------------------------------------------------------------------ #
    def area(self, with_btu: bool) -> AreaReport:
        per_unit = dict(BASELINE_AREA_FRACTIONS)
        if with_btu:
            per_unit["branch_trace_unit"] = BTU_AREA_FRACTION
        else:
            per_unit["branch_trace_unit"] = 0.0
        return AreaReport(per_unit=per_unit, total=sum(per_unit.values()))

    # ------------------------------------------------------------------ #
    # Power
    # ------------------------------------------------------------------ #
    def power(self, stats: PipelineStats, with_btu: bool) -> PowerReport:
        cycles = max(stats.cycles, 1)
        energy = ENERGY_PER_EVENT

        bpu_accesses = stats.bpu_predicted + stats.bpu_predicted  # lookup + update
        btu_accesses = stats.btu_replayed + stats.btu_misses

        dynamic = {
            "instruction_fetch_unit": (
                stats.fetched_instructions * energy["fetch"]
                + bpu_accesses * energy["bpu_access"]
                + stats.squash_cycles * energy["squash"]
            ),
            "renaming_unit": stats.renamed_instructions * energy["rename"],
            "load_store_unit": (stats.loads + stats.stores) * energy["lsu"],
            "execution_unit": stats.issued_instructions * energy["execute"],
            "branch_trace_unit": btu_accesses * energy["btu_access"] if with_btu else 0.0,
        }

        area = self.area(with_btu)
        per_unit: Dict[str, float] = {}
        for unit, dynamic_energy in dynamic.items():
            leakage = LEAKAGE_PER_AREA * area.per_unit.get(unit, 0.0)
            per_unit[unit] = dynamic_energy / cycles + leakage
        return PowerReport(per_unit=per_unit, total=sum(per_unit.values()))
