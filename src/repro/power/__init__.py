"""Analytical power and area model (the paper's Section 7.4).

Substitutes for McPAT/CACTI: per-unit event energies and area fractions are
calibrated so the unit breakdown matches the shape of Figure 9 — the
instruction fetch unit (which contains the branch prediction unit) dominates
frontend energy, Cassandra avoids BPU accesses for crypto branches and adds a
small BTU, and the BTU contributes ~1.3% area.
"""

from repro.power.model import PowerAreaModel, PowerReport, AreaReport

__all__ = ["PowerAreaModel", "PowerReport", "AreaReport"]
