"""Architectural state: registers, memory, call stack, and secrecy taint.

The state object is deliberately simple: registers and memory default to
zero, values are 64-bit words, and a shadow call stack holds return
addresses (the ISA models calls/returns without spilling return addresses to
data memory, which keeps kernels compact while preserving the call/return
control-flow structure the branch analysis cares about).

Secrecy taint is tracked alongside values: a register or memory word is
*secret* when it (transitively) derives from a secret-initialised memory
location and has not been declassified.  The taint is purely an analysis aid
— it never influences architectural results — and is consumed by the
ProSpeCT/SPT defense models and the leakage checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

WORD_MASK = (1 << 64) - 1


@dataclass
class ArchState:
    """Mutable architectural machine state."""

    pc: int = 0
    registers: Dict[str, int] = field(default_factory=dict)
    memory: Dict[int, int] = field(default_factory=dict)
    call_stack: List[int] = field(default_factory=list)
    halted: bool = False
    register_taint: Dict[str, bool] = field(default_factory=dict)
    memory_taint: Dict[int, bool] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Values
    # ------------------------------------------------------------------ #
    def read_reg(self, name: str) -> int:
        """Read a register (uninitialised registers read as zero)."""
        return self.registers.get(name, 0)

    def write_reg(self, name: str, value: int) -> None:
        self.registers[name] = value & WORD_MASK

    def read_mem(self, address: int) -> int:
        """Read a memory word (uninitialised memory reads as zero)."""
        return self.memory.get(address, 0)

    def write_mem(self, address: int, value: int) -> None:
        self.memory[address] = value & WORD_MASK

    # ------------------------------------------------------------------ #
    # Secrecy taint
    # ------------------------------------------------------------------ #
    def reg_is_secret(self, name: str) -> bool:
        return self.register_taint.get(name, False)

    def mem_is_secret(self, address: int) -> bool:
        return self.memory_taint.get(address, False)

    def set_reg_taint(self, name: str, secret: bool) -> None:
        self.register_taint[name] = secret

    def set_mem_taint(self, address: int, secret: bool) -> None:
        self.memory_taint[address] = secret

    def mark_secret_addresses(self, addresses: Iterable[int]) -> None:
        for address in addresses:
            self.memory_taint[address] = True

    # ------------------------------------------------------------------ #
    # Utilities
    # ------------------------------------------------------------------ #
    def snapshot_registers(self) -> Dict[str, int]:
        """Copy of the current register file (for tests and debugging)."""
        return dict(self.registers)

    def copy(self) -> "ArchState":
        """Deep-enough copy for checkpoint/restore in speculative models."""
        return ArchState(
            pc=self.pc,
            registers=dict(self.registers),
            memory=dict(self.memory),
            call_stack=list(self.call_stack),
            halted=self.halted,
            register_taint=dict(self.register_taint),
            memory_taint=dict(self.memory_taint),
        )
