"""Sequential (architectural) executor.

The :class:`SequentialExecutor` implements the paper's sequential execution
model ⟦·⟧seq.  It runs a :class:`~repro.isa.program.Program` to completion
and produces three artefacts that the rest of the system consumes:

* the final :class:`~repro.arch.state.ArchState`;
* the *contract observation trace* (⟦·⟧ct leakage: pc/call/ret + load/store
  addresses, plus ``leak`` observations for the ⟦·⟧arch model), used by the
  formal model and the security experiments;
* the *dynamic instruction stream*, a list of
  :class:`DynamicInstruction` records used by the branch analysis (raw
  per-branch traces) and by the out-of-order timing model.

Because constant-time programs have input-independent control flow, the
dynamic instruction stream doubles as the "recorded" sequential control flow
that Cassandra replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.observations import Observation, ObservationKind
from repro.arch.state import WORD_MASK, ArchState
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program

MASK32 = 0xFFFFFFFF


class ExecutionError(RuntimeError):
    """Raised when a program misbehaves (bad PC, step limit exceeded, ...)."""


@dataclass(frozen=True)
class DynamicInstruction:
    """One dynamically executed instruction.

    The record carries everything the timing model needs to rebuild data
    dependencies and memory behaviour without re-executing the program:
    source/destination registers, the effective memory address (if any), the
    architecturally correct next PC, and secrecy/crypto metadata.
    """

    seq: int
    pc: int
    opcode: Opcode
    dst: Optional[str]
    srcs: Tuple[str, ...]
    next_pc: int
    mem_address: Optional[int] = None
    is_branch: bool = False
    taken: Optional[bool] = None
    crypto: bool = False
    secret_operand: bool = False
    value: Optional[int] = None

    @property
    def is_load(self) -> bool:
        return self.opcode is Opcode.LOAD

    @property
    def is_store(self) -> bool:
        return self.opcode is Opcode.STORE

    @property
    def is_memory(self) -> bool:
        return self.opcode in (Opcode.LOAD, Opcode.STORE)

    @property
    def is_conditional(self) -> bool:
        return self.opcode in (Opcode.BEQZ, Opcode.BNEZ)

    @property
    def is_call(self) -> bool:
        return self.opcode in (Opcode.CALL, Opcode.CALLI)

    @property
    def is_return(self) -> bool:
        return self.opcode is Opcode.RET

    @property
    def is_indirect(self) -> bool:
        return self.opcode in (Opcode.JMPI, Opcode.CALLI, Opcode.RET)


@dataclass
class ExecutionResult:
    """The complete outcome of a sequential run."""

    program: Program
    state: ArchState
    observations: List[Observation]
    dynamic: List[DynamicInstruction]
    instruction_count: int
    branch_outcomes: Dict[int, List[int]] = field(default_factory=dict)

    def register(self, name: str) -> int:
        """Convenience accessor for a final register value."""
        return self.state.read_reg(name)

    def memory_words(self, base: int, count: int) -> List[int]:
        """Read ``count`` consecutive words starting at ``base``."""
        return [self.state.read_mem(base + i) for i in range(count)]


class SequentialExecutor:
    """Functional, in-order executor for the reproduction ISA."""

    def __init__(self, max_steps: int = 5_000_000, record_dynamic: bool = True) -> None:
        self.max_steps = max_steps
        self.record_dynamic = record_dynamic

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(
        self,
        program: Program,
        initial_registers: Optional[Dict[str, int]] = None,
        memory_overrides: Optional[Dict[int, int]] = None,
    ) -> ExecutionResult:
        """Execute ``program`` to completion under the sequential model.

        ``memory_overrides`` lets callers substitute different inputs (for
        example the two-input diff of the trace generation procedure) without
        rebuilding the program.
        """
        state = ArchState(pc=program.entry)
        state.memory.update(program.initial_memory)
        if memory_overrides:
            state.memory.update(
                {addr: value & WORD_MASK for addr, value in memory_overrides.items()}
            )
        if initial_registers:
            for name, value in initial_registers.items():
                state.write_reg(name, value)
        state.mark_secret_addresses(program.secret_addresses)

        observations: List[Observation] = []
        dynamic: List[DynamicInstruction] = []
        branch_outcomes: Dict[int, List[int]] = {}
        steps = 0

        while not state.halted:
            if steps >= self.max_steps:
                raise ExecutionError(
                    f"program {program.name!r} exceeded {self.max_steps} steps"
                )
            pc = state.pc
            if not program.is_valid_pc(pc):
                raise ExecutionError(f"program {program.name!r} jumped to invalid PC {pc}")
            instruction = program.fetch(pc)
            record = self._step(program, state, instruction, pc, steps, observations)
            steps += 1
            if record is not None:
                if self.record_dynamic:
                    dynamic.append(record)
                if record.is_branch:
                    branch_outcomes.setdefault(pc, []).append(record.next_pc)

        return ExecutionResult(
            program=program,
            state=state,
            observations=observations,
            dynamic=dynamic,
            instruction_count=steps,
            branch_outcomes=branch_outcomes,
        )

    # ------------------------------------------------------------------ #
    # Single-step semantics
    # ------------------------------------------------------------------ #
    def _step(
        self,
        program: Program,
        state: ArchState,
        instruction: Instruction,
        pc: int,
        seq: int,
        observations: List[Observation],
    ) -> Optional[DynamicInstruction]:
        opcode = instruction.opcode
        crypto = instruction.crypto or program.is_crypto_pc(pc)
        next_pc = pc + 1
        mem_address: Optional[int] = None
        taken: Optional[bool] = None
        result_value: Optional[int] = None
        secret_operand = any(state.reg_is_secret(src) for src in instruction.srcs)

        def observe(kind: ObservationKind, value: int) -> None:
            observations.append(Observation(kind=kind, value=value, crypto=crypto, pc=pc))

        if opcode in _ALU_OPS:
            result_value = self._alu(state, instruction)
            state.write_reg(instruction.dst, result_value)  # type: ignore[arg-type]
            state.set_reg_taint(instruction.dst, secret_operand)  # type: ignore[arg-type]
        elif opcode is Opcode.MOV:
            result_value = state.read_reg(instruction.srcs[0])
            state.write_reg(instruction.dst, result_value)  # type: ignore[arg-type]
            state.set_reg_taint(instruction.dst, secret_operand)  # type: ignore[arg-type]
        elif opcode is Opcode.MOVI:
            result_value = int(instruction.imm or 0)
            state.write_reg(instruction.dst, result_value)  # type: ignore[arg-type]
            state.set_reg_taint(instruction.dst, False)  # type: ignore[arg-type]
        elif opcode is Opcode.CSEL:
            cond, a, b = instruction.srcs
            result_value = state.read_reg(a) if state.read_reg(cond) != 0 else state.read_reg(b)
            state.write_reg(instruction.dst, result_value)  # type: ignore[arg-type]
            state.set_reg_taint(instruction.dst, secret_operand)  # type: ignore[arg-type]
        elif opcode is Opcode.LOAD:
            mem_address = (state.read_reg(instruction.srcs[0]) + (instruction.imm or 0)) & WORD_MASK
            result_value = state.read_mem(mem_address)
            state.write_reg(instruction.dst, result_value)  # type: ignore[arg-type]
            state.set_reg_taint(instruction.dst, state.mem_is_secret(mem_address))  # type: ignore[arg-type]
            secret_operand = secret_operand or state.mem_is_secret(mem_address)
            observe(ObservationKind.LOAD, mem_address)
        elif opcode is Opcode.STORE:
            src, addr_reg = instruction.srcs
            mem_address = (state.read_reg(addr_reg) + (instruction.imm or 0)) & WORD_MASK
            value = state.read_reg(src)
            state.write_mem(mem_address, value)
            state.set_mem_taint(mem_address, state.reg_is_secret(src))
            observe(ObservationKind.STORE, mem_address)
        elif opcode is Opcode.BEQZ or opcode is Opcode.BNEZ:
            cond = state.read_reg(instruction.srcs[0])
            take_if_zero = opcode is Opcode.BEQZ
            taken = (cond == 0) if take_if_zero else (cond != 0)
            next_pc = int(instruction.imm) if taken else pc + 1  # type: ignore[arg-type]
            observe(ObservationKind.PC, next_pc)
        elif opcode is Opcode.JMP:
            next_pc = int(instruction.imm)  # type: ignore[arg-type]
            taken = True
            observe(ObservationKind.PC, next_pc)
        elif opcode is Opcode.JMPI:
            next_pc = state.read_reg(instruction.srcs[0])
            taken = True
            observe(ObservationKind.PC, next_pc)
        elif opcode is Opcode.CALL:
            next_pc = int(instruction.imm)  # type: ignore[arg-type]
            state.call_stack.append(pc + 1)
            taken = True
            observe(ObservationKind.CALL, next_pc)
        elif opcode is Opcode.CALLI:
            next_pc = state.read_reg(instruction.srcs[0])
            state.call_stack.append(pc + 1)
            taken = True
            observe(ObservationKind.CALL, next_pc)
        elif opcode is Opcode.RET:
            if state.call_stack:
                next_pc = state.call_stack.pop()
            else:
                state.halted = True
                next_pc = pc
            taken = True
            observe(ObservationKind.RET, next_pc)
        elif opcode is Opcode.HALT:
            state.halted = True
            next_pc = pc
        elif opcode is Opcode.DECLASSIFY:
            state.set_reg_taint(instruction.srcs[0], False)
        elif opcode is Opcode.LEAK:
            result_value = state.read_reg(instruction.srcs[0])
            observe(ObservationKind.LEAK, result_value)
        elif opcode in (Opcode.NOP, Opcode.FENCE, Opcode.HINT):
            pass
        else:  # pragma: no cover - defensive
            raise ExecutionError(f"unsupported opcode {opcode!r} at PC {pc}")

        state.pc = next_pc

        return DynamicInstruction(
            seq=seq,
            pc=pc,
            opcode=opcode,
            dst=instruction.dst if instruction.writes_register else None,
            srcs=instruction.srcs,
            next_pc=next_pc,
            mem_address=mem_address,
            is_branch=instruction.is_branch,
            taken=taken,
            crypto=crypto,
            secret_operand=secret_operand,
            value=result_value,
        )

    # ------------------------------------------------------------------ #
    # ALU semantics
    # ------------------------------------------------------------------ #
    @staticmethod
    def _operands(state: ArchState, instruction: Instruction) -> Tuple[int, int]:
        a = state.read_reg(instruction.srcs[0])
        if len(instruction.srcs) > 1:
            b = state.read_reg(instruction.srcs[1])
        else:
            b = int(instruction.imm or 0)
        return a, b

    def _alu(self, state: ArchState, instruction: Instruction) -> int:
        opcode = instruction.opcode
        if opcode is Opcode.NOT:
            return (~state.read_reg(instruction.srcs[0])) & WORD_MASK
        a, b = self._operands(state, instruction)
        if opcode is Opcode.ADD:
            return (a + b) & WORD_MASK
        if opcode is Opcode.SUB:
            return (a - b) & WORD_MASK
        if opcode is Opcode.MUL:
            return (a * b) & WORD_MASK
        if opcode is Opcode.DIV:
            return (a // b) & WORD_MASK if b else 0
        if opcode is Opcode.MOD:
            return (a % b) & WORD_MASK if b else 0
        if opcode is Opcode.AND:
            return a & b
        if opcode is Opcode.OR:
            return a | b
        if opcode is Opcode.XOR:
            return a ^ b
        if opcode is Opcode.SHL:
            return (a << b) & WORD_MASK if b < 64 else 0
        if opcode is Opcode.SHR:
            return (a >> b) & WORD_MASK if b < 64 else 0
        if opcode is Opcode.ROTL:
            amount = b % 32
            a32 = a & MASK32
            return ((a32 << amount) | (a32 >> (32 - amount))) & MASK32 if amount else a32
        if opcode is Opcode.ROTR:
            amount = b % 32
            a32 = a & MASK32
            return ((a32 >> amount) | (a32 << (32 - amount))) & MASK32 if amount else a32
        if opcode is Opcode.ROTL64:
            amount = b % 64
            return ((a << amount) | (a >> (64 - amount))) & WORD_MASK if amount else a
        if opcode is Opcode.ROTR64:
            amount = b % 64
            return ((a >> amount) | (a << (64 - amount))) & WORD_MASK if amount else a
        if opcode is Opcode.CMPEQ:
            return int(a == b)
        if opcode is Opcode.CMPNE:
            return int(a != b)
        if opcode is Opcode.CMPLT:
            return int(a < b)
        if opcode is Opcode.CMPLE:
            return int(a <= b)
        if opcode is Opcode.CMPGT:
            return int(a > b)
        if opcode is Opcode.CMPGE:
            return int(a >= b)
        raise ExecutionError(f"not an ALU opcode: {opcode!r}")  # pragma: no cover


_ALU_OPS = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.DIV,
        Opcode.MOD,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.NOT,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.ROTL,
        Opcode.ROTR,
        Opcode.ROTL64,
        Opcode.ROTR64,
        Opcode.CMPEQ,
        Opcode.CMPNE,
        Opcode.CMPLT,
        Opcode.CMPLE,
        Opcode.CMPGT,
        Opcode.CMPGE,
    }
)
