"""Contract-level observations (the paper's leakage models).

The constant-time leakage model ⟦·⟧ct exposes the control flow of the
program (``pc``, ``call``, ``ret`` observations) and the addresses of memory
accesses (``load``/``store`` observations), but never the values involved.
The architectural leakage model ⟦·⟧arch additionally exposes computed values
(we model that with ``leak`` observations emitted by the LEAK transmitter
instruction).

Observations carry the crypto tag of the instruction that produced them,
mirroring the ``@kappa`` tags of the paper's formalization; the Cassandra
hardware semantics replays exactly the crypto control-flow sub-trace.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence


class ObservationKind(enum.Enum):
    """The kinds of attacker-visible observations in the contract traces."""

    PC = "pc"
    CALL = "call"
    RET = "ret"
    LOAD = "load"
    STORE = "store"
    LEAK = "leak"


#: Observation kinds that constitute control flow (CfObs in the paper).
CONTROL_FLOW_KINDS = frozenset(
    {ObservationKind.PC, ObservationKind.CALL, ObservationKind.RET}
)

#: Observation kinds that constitute memory leakage (MemObs in the paper).
MEMORY_KINDS = frozenset({ObservationKind.LOAD, ObservationKind.STORE})


@dataclass(frozen=True)
class Observation:
    """A single labelled observation in a contract or hardware trace.

    Attributes
    ----------
    kind:
        What is being observed.
    value:
        The observed value: a target PC for control-flow observations, a
        memory address for load/store observations, or the transmitted value
        for ``leak`` observations.
    crypto:
        Whether the producing instruction was tagged as crypto code.
    pc:
        PC of the instruction that produced the observation (useful for
        attributing leaks in tests and attack analyses).
    """

    kind: ObservationKind
    value: int
    crypto: bool = False
    pc: int = -1

    @property
    def is_control_flow(self) -> bool:
        return self.kind in CONTROL_FLOW_KINDS

    @property
    def is_memory(self) -> bool:
        return self.kind in MEMORY_KINDS

    def __str__(self) -> str:  # pragma: no cover - debugging convenience
        tag = "@k" if self.crypto else ""
        return f"{self.kind.value} {self.value}{tag}"


def control_flow_trace(observations: Sequence[Observation]) -> List[Observation]:
    """Project a trace onto its control-flow observations."""
    return [obs for obs in observations if obs.is_control_flow]


def crypto_control_flow_trace(observations: Sequence[Observation]) -> List[Observation]:
    """The paper's crypto control-flow trace C: crypto-tagged CfObs only."""
    return [obs for obs in observations if obs.is_control_flow and obs.crypto]


def memory_trace(observations: Sequence[Observation]) -> List[Observation]:
    """Project a trace onto its memory-address observations."""
    return [obs for obs in observations if obs.is_memory]


def ct_trace(observations: Sequence[Observation]) -> List[Observation]:
    """The ⟦·⟧ct leakage: control flow plus memory addresses (no leak values)."""
    return [obs for obs in observations if obs.is_control_flow or obs.is_memory]
