"""Architectural (functional) execution and contract observations.

This package implements the sequential execution model of the ISA: the
architectural state, a functional executor that produces both the dynamic
instruction stream (consumed by the timing model and the branch analysis)
and the contract-level observation trace of the paper's ⟦·⟧ct^seq leakage
model (program counter, call/return, and memory-address observations).
"""

from repro.arch.state import ArchState
from repro.arch.observations import Observation, ObservationKind
from repro.arch.executor import DynamicInstruction, ExecutionResult, SequentialExecutor

__all__ = [
    "ArchState",
    "Observation",
    "ObservationKind",
    "DynamicInstruction",
    "ExecutionResult",
    "SequentialExecutor",
]
