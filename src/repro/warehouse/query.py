"""The warehouse's query layer: filters, aggregates, diffs, regressions.

:class:`Query` is a small immutable filter builder over a
:class:`~repro.warehouse.store.WarehouseStore`: chain :meth:`where` calls
to pin axes, then read :meth:`rows` (stable ``sort_key`` order),
:meth:`group_by` sub-queries, or the aggregates — which reuse the exact
:class:`~repro.api.results.ResultSet` semantics (the same
:func:`~repro.experiments.runner.geometric_mean`, the same per-workload
grouping) so a number computed from the warehouse matches the number the
live experiment printed.

:func:`compare_fingerprints` is the cross-sweep half: join two
fingerprints' rows on the request key and report per-point cycle ratios —
the regression detector CI gates on ("did this engine change move any
figure?").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.api.results import ResultSet
from repro.warehouse.store import WarehouseRow, WarehouseStore

#: Axes :meth:`Query.where`/:meth:`Query.group_by` understand — the
#: :meth:`ResultSet.group_by` vocabulary plus warehouse metadata.
QUERY_AXES = (
    "workload",
    "design",
    "config_digest",
    "btu_flush_interval",
    "warmup_passes",
    "tenant",
    "source",
)

#: Sentinel distinguishing "axis not filtered" from "filter on None" (the
#: BTU-flush axis legitimately filters on None = flushing disabled).
_UNSET: Any = object()


class WarehouseError(RuntimeError):
    """A query asked the store for something it cannot answer."""


@dataclass(frozen=True)
class Query:
    """An immutable filter over one store; every refinement is a new Query."""

    store: WarehouseStore
    fingerprint: Optional[str] = None
    filters: Tuple[Tuple[str, Any], ...] = ()

    def where(self, **axes: Any) -> "Query":
        """This query with the given axis equalities added."""
        for axis in axes:
            if axis not in QUERY_AXES:
                raise KeyError(
                    f"unknown query axis {axis!r}; known: {QUERY_AXES}"
                )
        return replace(self, filters=self.filters + tuple(axes.items()))

    def at(self, fingerprint: str) -> "Query":
        """This query pinned to one source-tree fingerprint."""
        return replace(self, fingerprint=fingerprint)

    # ------------------------------------------------------------------ #
    # Materialization
    # ------------------------------------------------------------------ #
    def rows(self) -> List[WarehouseRow]:
        """Matching rows in stable ``sort_key`` order."""
        return self.store.select(
            fingerprint=self.fingerprint, **dict(self.filters)
        )

    def export_rows(self) -> List[Dict[str, Any]]:
        """:meth:`ResultSet.export_rows`-shaped dicts, same stable order."""
        return [row.export_row() for row in self.rows()]

    def result_set(self) -> ResultSet:
        """An exact :class:`ResultSet` rebuilt from full-fidelity rows.

        Raises :class:`WarehouseError` when any matching row was
        backfilled without request/result JSON — those rows answer
        columnar queries but cannot rebuild typed entries.
        """
        rows = self.rows()
        lossy = [row.point_key for row in rows if not row.full_fidelity]
        if lossy:
            raise WarehouseError(
                f"{len(lossy)} matching row(s) lack full-fidelity JSON "
                f"(first: {lossy[0]}); they were backfilled from a lossy "
                "export and only support columnar queries"
            )
        return ResultSet([row.entry() for row in rows])

    def group_by(self, axis: str) -> Dict[Any, "Query"]:
        """Sub-queries per distinct value of ``axis``, in row order."""
        if axis not in QUERY_AXES:
            raise KeyError(f"unknown query axis {axis!r}; known: {QUERY_AXES}")
        groups: Dict[Any, Query] = {}
        for row in self.rows():
            value = getattr(row, axis)
            if value not in groups:
                groups[value] = self.where(**{axis: value})
        return groups

    # ------------------------------------------------------------------ #
    # Aggregates (ResultSet semantics over the cycles column)
    # ------------------------------------------------------------------ #
    def cycles(self, **axes: Any) -> int:
        """The cycle count of the single matching row (error on 0 or >1)."""
        rows = self.where(**axes).rows() if axes else self.rows()
        if len(rows) != 1:
            raise WarehouseError(
                f"expected exactly one row for {axes!r}, got {len(rows)}"
            )
        return rows[0].cycles

    def geomean_cycles(self, **axes: Any) -> float:
        """Geometric mean of cycles across the (filtered) rows."""
        from repro.experiments.runner import geometric_mean

        scoped = self.where(**axes) if axes else self
        return geometric_mean(float(row.cycles) for row in scoped.rows())

    def normalized_time(
        self, design: str, baseline: str = "unsafe-baseline", **axes: Any
    ) -> float:
        """``design``'s cycles over ``baseline``'s, within the filtered rows."""
        scoped = self.where(**axes) if axes else self
        return scoped.cycles(design=design) / scoped.cycles(design=baseline)

    def geomean_normalized_time(
        self, design: str, baseline: str = "unsafe-baseline", **axes: Any
    ) -> float:
        """Geometric mean of per-workload normalized times (Figure 7's row)."""
        from repro.experiments.runner import geometric_mean

        scoped = self.where(**axes) if axes else self
        return geometric_mean(
            group.normalized_time(design, baseline)
            for group in scoped.group_by("workload").values()
        )


# ---------------------------------------------------------------------- #
# Cross-fingerprint comparison / regression detection
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class PointDelta:
    """One request key's cycles under two fingerprints."""

    point_key: str
    workload: str
    design: str
    baseline_cycles: int
    candidate_cycles: int

    @property
    def ratio(self) -> float:
        """Candidate over baseline; > 1 is slower."""
        return self.candidate_cycles / self.baseline_cycles

    def as_dict(self) -> Dict[str, Any]:
        return {
            "point_key": json.loads(self.point_key),
            "workload": self.workload,
            "design": self.design,
            "baseline_cycles": self.baseline_cycles,
            "candidate_cycles": self.candidate_cycles,
            "ratio": round(self.ratio, 6),
        }


@dataclass(frozen=True)
class RegressionReport:
    """The cross-fingerprint verdict CI gates on."""

    baseline: str
    candidate: str
    threshold: float
    deltas: Tuple[PointDelta, ...] = ()
    missing: int = 0  # baseline-only points
    new: int = 0      # candidate-only points

    @property
    def regressions(self) -> List[PointDelta]:
        """Points at least ``threshold`` slower under the candidate."""
        return [d for d in self.deltas if d.ratio >= 1.0 + self.threshold]

    @property
    def improvements(self) -> List[PointDelta]:
        return [d for d in self.deltas if d.ratio <= 1.0 - self.threshold]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def as_dict(self) -> Dict[str, Any]:
        return {
            "baseline": self.baseline,
            "candidate": self.candidate,
            "threshold": self.threshold,
            "compared": len(self.deltas),
            "missing": self.missing,
            "new": self.new,
            "ok": self.ok,
            "regressions": [d.as_dict() for d in self.regressions],
            "improvements": [d.as_dict() for d in self.improvements],
        }


def compare_fingerprints(
    store: WarehouseStore,
    baseline: str,
    candidate: str,
    threshold: float = 0.02,
) -> RegressionReport:
    """Join two fingerprints on the request key and report cycle ratios.

    ``threshold`` is a fraction: 0.02 flags any common point whose
    candidate cycles are ≥ 2% above the baseline's.  Raises
    :class:`WarehouseError` when either fingerprint has no rows or the two
    share no points — a gate that silently compares nothing is worse than
    one that fails loudly.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    base_rows = {row.point_key: row for row in store.select(fingerprint=baseline)}
    cand_rows = {row.point_key: row for row in store.select(fingerprint=candidate)}
    if not base_rows:
        raise WarehouseError(f"baseline fingerprint {baseline!r} has no rows")
    if not cand_rows:
        raise WarehouseError(f"candidate fingerprint {candidate!r} has no rows")
    common = [key for key in base_rows if key in cand_rows]
    if not common:
        raise WarehouseError(
            f"fingerprints {baseline!r} and {candidate!r} share no points"
        )
    deltas = tuple(
        PointDelta(
            point_key=key,
            workload=base_rows[key].workload,
            design=base_rows[key].design,
            baseline_cycles=base_rows[key].cycles,
            candidate_cycles=cand_rows[key].cycles,
        )
        for key in sorted(common, key=lambda k: base_rows[k].sort_tuple())
    )
    return RegressionReport(
        baseline=baseline,
        candidate=candidate,
        threshold=threshold,
        deltas=deltas,
        missing=len(base_rows) - len(common),
        new=len(cand_rows) - len(common),
    )


def resolve_fingerprints(
    store: WarehouseStore,
    baseline: Optional[str] = None,
    candidate: Optional[str] = None,
) -> Tuple[str, str]:
    """Fill missing endpoints: candidate = newest, baseline = next-newest."""
    known = [info.fingerprint for info in store.fingerprints()]
    if candidate is None:
        if not known:
            raise WarehouseError("the store holds no fingerprints to compare")
        candidate = known[-1]
    if baseline is None:
        others = [fp for fp in known if fp != candidate]
        if not others:
            raise WarehouseError(
                f"no baseline fingerprint distinct from candidate {candidate!r}"
            )
        baseline = others[-1]
    return baseline, candidate
