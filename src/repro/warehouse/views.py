"""The warehouse's views layer: the paper's tables as queries over history.

A *view* re-renders one of the registered experiments from stored rows
instead of live simulation: :class:`WarehouseContext` duck-types the
:class:`~repro.api.service.ExperimentContext` surface the
simulation-driven experiments actually touch (``run``, ``workloads``,
``artifact(...).suite``), answering every expanded request from the store
— so ``spec.run(ctx)`` followed by ``spec.format(...)`` executes the
*same* experiment code over the *same* typed entries, and the rendered
table is byte-identical to a direct run (pinned by
``tests/warehouse/test_views.py``).

Only experiments whose ``run(ctx)`` is a pure function of simulation
results are viewable; the artifact studies (table1, table2, figure10,
trace-runtime) read prepared traces the warehouse does not store.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.api.matrix import ScenarioMatrix, expand_many
from repro.api.request import SimulationRequest
from repro.api.results import ResultSet
from repro.warehouse.query import WarehouseError
from repro.warehouse.store import WarehouseStore, point_key_of

#: Experiments renderable from stored results alone.
VIEWABLE_EXPERIMENTS = (
    "figure7",
    "figure8",
    "figure9",
    "interrupts",
    "cassandra-lite",
    "sweep",
)


class _SuiteOnly:
    """The one artifact attribute viewable experiments read: the suite."""

    __slots__ = ("suite",)

    def __init__(self, suite: str) -> None:
        self.suite = suite


class WarehouseContext:
    """An experiment context answered from the warehouse, not a service."""

    def __init__(
        self,
        store: WarehouseStore,
        fingerprint: str,
        workloads: Sequence[str],
    ) -> None:
        self.store = store
        self.fingerprint = fingerprint
        self._workloads = list(workloads)
        self.results = ResultSet()
        self.tag: Optional[str] = None
        self._by_key = {
            row.point_key: row
            for row in store.select(fingerprint=fingerprint)
        }

    @property
    def workloads(self) -> List[str]:
        return list(self._workloads)

    @property
    def jobs(self) -> int:
        return 1

    def artifact(self, ref) -> _SuiteOnly:
        """The workload's suite, resolved without any preparation."""
        name = ref if isinstance(ref, str) else ref.name
        suite = getattr(ref, "suite", "")
        if not suite:
            from repro.crypto.workloads import get_workload

            try:
                suite = get_workload(name).suite
            except KeyError:
                if name.startswith("synthetic-"):
                    suite = "synthetic"
                else:
                    raise
        return _SuiteOnly(suite)

    def artifacts(self):  # pragma: no cover - guards misuse
        raise WarehouseError(
            "warehouse views cannot prepare artifacts; only "
            "simulation-result experiments are viewable"
        )

    def run(self, what, priority: int = 0, tags: Sequence[str] = ()) -> ResultSet:
        """Answer an experiment's matrix entirely from stored rows."""
        requests = self._expand(what)
        entries = []
        for request in requests:
            row = self._by_key.get(point_key_of(request))
            if row is None:
                raise WarehouseError(
                    f"fingerprint {self.fingerprint!r} has no stored result "
                    f"for {request.workload.name} × {request.design}; run the "
                    "experiment (with --warehouse) or ingest its export first"
                )
            stored_request, result = row.entry()
            # Answer under the *expanded* request object: its config carries
            # the full identity the stored digest was derived from.
            assert stored_request == request
            entries.append((request, result))
        answer = ResultSet(entries)
        self.results = self.results.merged(answer)
        return answer

    def _expand(self, what) -> List[SimulationRequest]:
        if isinstance(what, (ScenarioMatrix, SimulationRequest)):
            what = [what]
        return expand_many(what, default_workloads=self._workloads)


def view_workloads(
    store: WarehouseStore, fingerprint: str
) -> List[str]:
    """The workload axis a direct run over the stored set would use.

    Workload *order* decides table row order, so it must reproduce the
    producing run's: the canonical selectors keep their canonical order
    (the stored set matching the quick subset renders in quick order, the
    full registry in registry order); anything else falls back to registry
    order filtered to what is stored.
    """
    from repro.crypto.workloads import workload_names
    from repro.pipeline.pipeline import QUICK_WORKLOADS

    stored = {row.workload for row in store.select(fingerprint=fingerprint)}
    registry_stored = {name for name in workload_names() if name in stored}
    if registry_stored == set(QUICK_WORKLOADS):
        return list(QUICK_WORKLOADS)
    return [name for name in workload_names() if name in stored]


def render_view(
    store: WarehouseStore,
    name: str,
    fingerprint: Optional[str] = None,
    workloads: Optional[Sequence[str]] = None,
) -> str:
    """Re-render experiment ``name``'s table from the store.

    ``fingerprint`` defaults to the most recently written one;
    ``workloads`` may be a name list or a CLI selector string
    (``"all"``/``"quick"``/comma-separated) and defaults to
    :func:`view_workloads` — the order a direct run over the stored set
    would have used.
    """
    if name not in VIEWABLE_EXPERIMENTS:
        raise WarehouseError(
            f"experiment {name!r} is not viewable from stored results; "
            f"viewable: {', '.join(VIEWABLE_EXPERIMENTS)}"
        )
    from repro.experiments import resolve_experiments

    spec = resolve_experiments([name])[0]
    if fingerprint is None:
        latest = store.latest_fingerprints(1)
        if not latest:
            raise WarehouseError("the store is empty; nothing to render")
        fingerprint = latest[0]
    if workloads is None:
        workloads = view_workloads(store, fingerprint)
    elif isinstance(workloads, str):
        from repro.pipeline.pipeline import resolve_workload_names

        workloads = resolve_workload_names(workloads)
    ctx = WarehouseContext(store, fingerprint, workloads)
    data = spec.run(ctx)
    return spec.format(data)
