"""The warehouse's schema/store layer: one WAL-mode SQLite file of results.

:class:`WarehouseStore` is the durable, queryable record of every
simulation point this source tree (and its ancestors) ever answered: one
row per (request ``sort_key`` × source fingerprint), carrying both the
columnar axes the query layer filters on (workload, design, config digest,
BTU flush, warm-up, cycles, instructions, IPC) and — when the point came
through the event stream or a full-fidelity export — the lossless
request/result JSON that lets the views layer rebuild an exact
:class:`~repro.api.results.ResultSet`.

Design points:

* **Idempotent upserts.**  The primary key is ``(point_key, fingerprint)``
  where ``point_key`` serializes :meth:`SimulationRequest.sort_key` — the
  same total order exports and tables sort by.  Re-ingesting the same
  point under the same source fingerprint (a journal replay after
  ``kill -9``, a backfill run twice) lands on the same row; lossy
  re-ingest never erases full-fidelity JSON (``COALESCE`` keeps it).
* **WAL mode.**  Readers (queries, views, regression gates) never block
  the incremental writer riding the scheduler's event stream, and a torn
  final commit after ``kill -9`` simply isn't there on reopen — the
  journal-driven resume re-ingests it, and the upsert makes that replay
  safe.
* **Migrations.**  ``PRAGMA user_version`` tracks the schema; every
  ``_MIGRATIONS`` step below the file's version is applied on open, so a
  store written by an older tree upgrades in place.
* **Fault site.**  Every write passes ``FAULT_HOOK("warehouse-write")``
  first (see :mod:`repro.testing.faults`), so the chaos suite can kill the
  process at the Nth warehouse write and assert the replay converges.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.api.request import SimulationRequest
from repro.uarch.core import SimulationResult

#: Set by :mod:`repro.testing.faults` when a plan is armed; visited as
#: ``FAULT_HOOK("warehouse-write", path=...)`` before every committed write.
FAULT_HOOK = None

#: The store file inside a state dir (next to ``journal.jsonl`` and
#: ``gateway.sqlite3``).
WAREHOUSE_NAME = "warehouse.sqlite3"

#: Rows ingested live off the scheduler's event stream.
SOURCE_EVENT = "event"
#: Rows backfilled from JSON exports / BENCH files.
SOURCE_BACKFILL = "backfill"

#: ``PRAGMA user_version`` after every migration has run.
SCHEMA_VERSION = 2

#: Ordered migration scripts; ``_MIGRATIONS[i]`` brings a version-``i``
#: store to version ``i + 1``.  Append, never edit: old stores replay the
#: tail on open.
_MIGRATIONS: Tuple[str, ...] = (
    # v0 -> v1: the results table, one row per (point, fingerprint).
    """
    CREATE TABLE results (
        point_key          TEXT NOT NULL,
        fingerprint        TEXT NOT NULL,
        workload           TEXT NOT NULL,
        design             TEXT NOT NULL,
        config_digest      TEXT NOT NULL,
        btu_flush_interval INTEGER,
        warmup_passes      INTEGER NOT NULL,
        cycles             INTEGER NOT NULL,
        instructions       INTEGER,
        ipc                REAL,
        engine_tier        TEXT,
        request_json       TEXT,
        result_json        TEXT,
        recorded           REAL NOT NULL,
        job_id             TEXT,
        tenant             TEXT,
        tags               TEXT NOT NULL DEFAULT '[]',
        source             TEXT NOT NULL DEFAULT 'event',
        PRIMARY KEY (point_key, fingerprint)
    );
    CREATE INDEX results_axes ON results(fingerprint, workload, design);
    """,
    # v1 -> v2: BENCH trajectory history generalized from two JSON files.
    """
    CREATE TABLE bench (
        timestamp      TEXT NOT NULL,
        schema_version INTEGER NOT NULL,
        payload        TEXT NOT NULL,
        PRIMARY KEY (timestamp, schema_version)
    );
    """,
)


def point_key_of(request: SimulationRequest) -> str:
    """The warehouse key of one request: its ``sort_key`` as compact JSON."""
    return json.dumps(list(request.sort_key()), separators=(",", ":"))


@dataclass(frozen=True)
class WarehouseRow:
    """One stored point: columnar axes + optional full-fidelity JSON."""

    point_key: str
    fingerprint: str
    workload: str
    design: str
    config_digest: str
    btu_flush_interval: Optional[int]
    warmup_passes: int
    cycles: int
    instructions: Optional[int] = None
    ipc: Optional[float] = None
    engine_tier: Optional[str] = None
    request_json: Optional[str] = None
    result_json: Optional[str] = None
    recorded: float = 0.0
    job_id: Optional[str] = None
    tenant: Optional[str] = None
    tags: Tuple[str, ...] = ()
    source: str = SOURCE_EVENT

    def __post_init__(self) -> None:
        if not isinstance(self.tags, tuple):
            object.__setattr__(self, "tags", tuple(self.tags))

    @classmethod
    def from_entry(
        cls,
        request: SimulationRequest,
        result: SimulationResult,
        fingerprint: str,
        recorded: float,
        engine_tier: Optional[str] = None,
        job_id: Optional[str] = None,
        tags: Sequence[str] = (),
        tenant: Optional[str] = None,
        source: str = SOURCE_EVENT,
    ) -> "WarehouseRow":
        """A full-fidelity row from one (request, result) pair."""
        return cls(
            point_key=point_key_of(request),
            fingerprint=fingerprint,
            workload=request.workload.name,
            design=request.design,
            config_digest=request.config.digest(),
            btu_flush_interval=request.btu_flush_interval,
            warmup_passes=request.warmup_passes,
            cycles=result.cycles,
            instructions=result.stats.instructions,
            ipc=round(result.ipc, 4),
            engine_tier=engine_tier,
            request_json=request.to_json(),
            result_json=json.dumps(
                result.as_dict(), sort_keys=True, separators=(",", ":")
            ),
            recorded=recorded,
            job_id=job_id,
            tags=tuple(tags),
            tenant=tenant,
            source=source,
        )

    @property
    def full_fidelity(self) -> bool:
        """Whether this row can rebuild its exact (request, result) pair."""
        return self.request_json is not None and self.result_json is not None

    def entry(self) -> Tuple[SimulationRequest, SimulationResult]:
        """The (request, result) pair of a full-fidelity row."""
        if not self.full_fidelity:
            raise ValueError(
                f"row {self.point_key} @ {self.fingerprint} was backfilled "
                "without full-fidelity JSON; only columnar axes are available"
            )
        return (
            SimulationRequest.from_json(self.request_json),
            SimulationResult.from_dict(json.loads(self.result_json)),
        )

    def sort_tuple(self) -> Tuple:
        """The :meth:`SimulationRequest.sort_key` order, from the columns."""
        return (
            self.workload,
            self.design,
            self.config_digest,
            self.btu_flush_interval is not None,
            self.btu_flush_interval or 0,
            self.warmup_passes,
        )

    def export_row(self) -> Dict[str, Any]:
        """The :meth:`ResultSet.export_rows`-shaped dict of this row."""
        return {
            "workload": self.workload,
            "design": self.design,
            "config": self.config_digest,
            "btu_flush_interval": self.btu_flush_interval,
            "warmup_passes": self.warmup_passes,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ipc": self.ipc,
        }

    def content_tuple(self) -> Tuple:
        """The run-independent science of this row — what a crash-replayed
        ingest must reproduce exactly (timestamps, job ids, and tags
        legitimately differ across a resume)."""
        return (
            self.point_key,
            self.fingerprint,
            self.workload,
            self.design,
            self.config_digest,
            self.btu_flush_interval,
            self.warmup_passes,
            self.cycles,
            self.instructions,
            self.ipc,
            self.result_json,
        )


@dataclass(frozen=True)
class FingerprintInfo:
    """One source-tree fingerprint's footprint in the store."""

    fingerprint: str
    points: int
    first_recorded: float
    last_recorded: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "points": self.points,
            "first_recorded": self.first_recorded,
            "last_recorded": self.last_recorded,
        }


_UPSERT_SQL = """
INSERT INTO results (
    point_key, fingerprint, workload, design, config_digest,
    btu_flush_interval, warmup_passes, cycles, instructions, ipc,
    engine_tier, request_json, result_json, recorded, job_id, tenant,
    tags, source
) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
ON CONFLICT(point_key, fingerprint) DO UPDATE SET
    cycles=excluded.cycles,
    instructions=COALESCE(excluded.instructions, results.instructions),
    ipc=COALESCE(excluded.ipc, results.ipc),
    engine_tier=COALESCE(excluded.engine_tier, results.engine_tier),
    request_json=COALESCE(excluded.request_json, results.request_json),
    result_json=COALESCE(excluded.result_json, results.result_json),
    recorded=excluded.recorded,
    job_id=COALESCE(excluded.job_id, results.job_id),
    tenant=COALESCE(excluded.tenant, results.tenant),
    tags=excluded.tags,
    source=excluded.source
"""

_ROW_COLUMNS = (
    "point_key, fingerprint, workload, design, config_digest, "
    "btu_flush_interval, warmup_passes, cycles, instructions, ipc, "
    "engine_tier, request_json, result_json, recorded, job_id, tenant, "
    "tags, source"
)


class WarehouseStore:
    """The SQLite persistence of the result warehouse.

    Thread-safe: one connection, one lock, WAL journal.  ``path`` may be
    the SQLite file itself or a directory (a serve/gateway ``--state-dir``),
    in which case the store lives at ``<path>/warehouse.sqlite3`` next to
    the job journal.
    """

    def __init__(self, path: str) -> None:
        if not os.path.splitext(path)[1] and (
            os.path.isdir(path) or not os.path.exists(path)
        ):
            os.makedirs(path, exist_ok=True)
            path = os.path.join(path, WAREHOUSE_NAME)
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._migrate()

    def _migrate(self) -> None:
        with self._lock:
            version = int(self._conn.execute("PRAGMA user_version").fetchone()[0])
            for target, script in enumerate(_MIGRATIONS, start=1):
                if version < target:
                    self._conn.executescript(script)
                    self._conn.execute(f"PRAGMA user_version={target}")
            self._conn.commit()

    @property
    def schema_version(self) -> int:
        with self._lock:
            return int(self._conn.execute("PRAGMA user_version").fetchone()[0])

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "WarehouseStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    def _trip(self, detail: str) -> None:
        if FAULT_HOOK is not None:
            FAULT_HOOK("warehouse-write", path=self.path, detail=detail)

    def upsert(self, row: WarehouseRow) -> None:
        """Land (or refresh) one point row; safe to replay."""
        self._trip(row.point_key)
        with self._lock:
            self._conn.execute(_UPSERT_SQL, self._params(row))
            self._conn.commit()

    def upsert_many(self, rows: Iterable[WarehouseRow]) -> int:
        """Land a batch in one transaction; returns the row count."""
        rows = list(rows)
        for row in rows:
            self._trip(row.point_key)
        with self._lock:
            self._conn.executemany(_UPSERT_SQL, [self._params(r) for r in rows])
            self._conn.commit()
        return len(rows)

    @staticmethod
    def _params(row: WarehouseRow) -> Tuple:
        return (
            row.point_key,
            row.fingerprint,
            row.workload,
            row.design,
            row.config_digest,
            row.btu_flush_interval,
            row.warmup_passes,
            row.cycles,
            row.instructions,
            row.ipc,
            row.engine_tier,
            row.request_json,
            row.result_json,
            row.recorded,
            row.job_id,
            row.tenant,
            json.dumps(list(row.tags)),
            row.source,
        )

    def record_bench(self, payload: Dict[str, Any], timestamp: str) -> None:
        """Land one BENCH entry (engine snapshot or trajectory element)."""
        self._trip(f"bench:{timestamp}")
        with self._lock:
            self._conn.execute(
                "INSERT INTO bench VALUES (?, ?, ?) "
                "ON CONFLICT(timestamp, schema_version) DO UPDATE SET "
                "payload=excluded.payload",
                (
                    timestamp,
                    int(payload.get("schema_version", 0)),
                    json.dumps(payload, sort_keys=True),
                ),
            )
            self._conn.commit()

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def _rows(self, sql: str, params: Tuple = ()) -> List[WarehouseRow]:
        with self._lock:
            raw = self._conn.execute(sql, params).fetchall()
        return [self._row(values) for values in raw]

    @staticmethod
    def _row(values: Tuple) -> WarehouseRow:
        return WarehouseRow(
            point_key=values[0],
            fingerprint=values[1],
            workload=values[2],
            design=values[3],
            config_digest=values[4],
            btu_flush_interval=values[5],
            warmup_passes=values[6],
            cycles=values[7],
            instructions=values[8],
            ipc=values[9],
            engine_tier=values[10],
            request_json=values[11],
            result_json=values[12],
            recorded=values[13],
            job_id=values[14],
            tenant=values[15],
            tags=tuple(json.loads(values[16] or "[]")),
            source=values[17],
        )

    def select(self, fingerprint: Optional[str] = None, **axes: Any) -> List[WarehouseRow]:
        """Rows matching the given axis equalities, in stable sort order.

        ``axes`` keys are column names (``workload``, ``design``,
        ``config_digest``, ``btu_flush_interval``, ``warmup_passes``,
        ``tenant``, ``source``); a ``None`` value matches SQL ``NULL``.
        """
        clauses: List[str] = []
        params: List[Any] = []
        if fingerprint is not None:
            clauses.append("fingerprint=?")
            params.append(fingerprint)
        allowed = (
            "workload", "design", "config_digest", "btu_flush_interval",
            "warmup_passes", "tenant", "source", "job_id",
        )
        for column, value in axes.items():
            if column not in allowed:
                raise KeyError(f"unknown warehouse axis {column!r}; known: {allowed}")
            if value is None:
                clauses.append(f"{column} IS NULL")
            else:
                clauses.append(f"{column}=?")
                params.append(value)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self._rows(f"SELECT {_ROW_COLUMNS} FROM results{where}", tuple(params))
        return sorted(rows, key=lambda row: (row.sort_tuple(), row.fingerprint))

    def count(self, fingerprint: Optional[str] = None) -> int:
        sql = "SELECT COUNT(*) FROM results"
        params: Tuple = ()
        if fingerprint is not None:
            sql += " WHERE fingerprint=?"
            params = (fingerprint,)
        with self._lock:
            return int(self._conn.execute(sql, params).fetchone()[0])

    def fingerprints(self) -> List[FingerprintInfo]:
        """Every fingerprint's footprint, oldest first (by last write)."""
        with self._lock:
            raw = self._conn.execute(
                "SELECT fingerprint, COUNT(*), MIN(recorded), MAX(recorded) "
                "FROM results GROUP BY fingerprint "
                "ORDER BY MAX(recorded), fingerprint"
            ).fetchall()
        return [
            FingerprintInfo(row[0], int(row[1]), float(row[2]), float(row[3]))
            for row in raw
        ]

    def latest_fingerprints(self, count: int = 2) -> List[str]:
        """The ``count`` most recently written fingerprints, newest first."""
        infos = self.fingerprints()
        return [info.fingerprint for info in reversed(infos[-count:])]

    def content_rows(self, fingerprint: Optional[str] = None) -> List[Tuple]:
        """Deterministic science-only tuples, for replay/idempotence checks."""
        return sorted(
            row.content_tuple() for row in self.select(fingerprint=fingerprint)
        )

    def bench_history(self) -> List[Dict[str, Any]]:
        """Every BENCH entry, oldest first, as plain dicts (+``timestamp``)."""
        with self._lock:
            raw = self._conn.execute(
                "SELECT timestamp, payload FROM bench ORDER BY timestamp"
            ).fetchall()
        history = []
        for timestamp, payload in raw:
            entry = json.loads(payload)
            entry.setdefault("timestamp", timestamp)
            history.append(entry)
        return history

    # ------------------------------------------------------------------ #
    # Compaction
    # ------------------------------------------------------------------ #
    def compact(self, keep: int = 8) -> int:
        """Drop all but the ``keep`` most recent fingerprints and VACUUM.

        Returns the number of result rows deleted.  Bench history is kept —
        it is tiny and is the long-horizon trend record.
        """
        if keep < 1:
            raise ValueError("compact keeps at least one fingerprint")
        survivors = set(self.latest_fingerprints(keep))
        self._trip(f"compact:{keep}")
        with self._lock:
            known = [
                row[0]
                for row in self._conn.execute(
                    "SELECT DISTINCT fingerprint FROM results"
                ).fetchall()
            ]
            doomed = [fp for fp in known if fp not in survivors]
            deleted = 0
            for fp in doomed:
                cursor = self._conn.execute(
                    "DELETE FROM results WHERE fingerprint=?", (fp,)
                )
                deleted += cursor.rowcount
            self._conn.commit()
            self._conn.execute("VACUUM")
        return deleted
