"""The result warehouse: a queryable, durable history of simulation points.

Three layers over one WAL-mode SQLite file:

* :mod:`repro.warehouse.store` — schema, migrations, idempotent upserts
  keyed on (request ``sort_key`` × source-tree fingerprint), compaction;
* :mod:`repro.warehouse.ingest` — the incremental writer riding the
  scheduler's :class:`~repro.api.jobs.JobEvent` stream, plus backfill of
  pre-warehouse JSON exports and BENCH files;
* :mod:`repro.warehouse.query` / :mod:`repro.warehouse.views` — axis
  filters, :class:`~repro.api.results.ResultSet`-semantics aggregates,
  cross-fingerprint regression detection, and the paper's tables re-rendered
  byte-identically from stored rows.

``python -m repro warehouse`` (see :mod:`repro.warehouse.cli`) is the
operator surface; ``repro serve --state-dir`` and ``repro gateway`` attach
the ingestor automatically.
"""

from repro.warehouse.ingest import (
    FINGERPRINT_ENV,
    WarehouseIngestor,
    attach_ingestor,
    default_fingerprint,
    ingest_file,
)
from repro.warehouse.query import (
    PointDelta,
    Query,
    RegressionReport,
    WarehouseError,
    compare_fingerprints,
    resolve_fingerprints,
)
from repro.warehouse.store import (
    WAREHOUSE_NAME,
    FingerprintInfo,
    WarehouseRow,
    WarehouseStore,
    point_key_of,
)
from repro.warehouse.views import (
    VIEWABLE_EXPERIMENTS,
    WarehouseContext,
    render_view,
)

__all__ = [
    "FINGERPRINT_ENV",
    "FingerprintInfo",
    "PointDelta",
    "Query",
    "RegressionReport",
    "VIEWABLE_EXPERIMENTS",
    "WAREHOUSE_NAME",
    "WarehouseContext",
    "WarehouseError",
    "WarehouseIngestor",
    "WarehouseRow",
    "WarehouseStore",
    "attach_ingestor",
    "compare_fingerprints",
    "default_fingerprint",
    "ingest_file",
    "point_key_of",
    "render_view",
    "resolve_fingerprints",
]
