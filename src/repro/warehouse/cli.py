"""``python -m repro warehouse`` — the result warehouse's command line.

Subcommands (all take ``--warehouse PATH`` or ``--state-dir DIR``, the
latter using a serve/gateway state dir's ``warehouse.sqlite3``)::

    repro warehouse ingest results.json bench.json --fingerprint abc123
    repro warehouse query --workload SHA-256 --design cassandra --format csv
    repro warehouse fingerprints
    repro warehouse diff --baseline fpA --candidate fpB
    repro warehouse regressions --threshold 0.02        # CI gate: exit 1
    repro warehouse export --fingerprint fpB --format csv
    repro warehouse view figure7
    repro warehouse compact --keep 4

Exit codes: 0 success (for ``regressions``: no regression at or above the
threshold), 1 regressions found, 2 usage or data errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.api.results import rows_to_csv
from repro.warehouse.ingest import ingest_file
from repro.warehouse.query import (
    Query,
    WarehouseError,
    compare_fingerprints,
    resolve_fingerprints,
)
from repro.warehouse.store import WAREHOUSE_NAME, WarehouseStore
from repro.warehouse.views import VIEWABLE_EXPERIMENTS, render_view


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro warehouse",
        description="Query, backfill, diff, and gate on the result "
        "warehouse — the SQLite store of every simulation point, keyed on "
        "request sort-key × source-tree fingerprint.",
    )
    parser.add_argument(
        "--warehouse",
        default=None,
        metavar="PATH",
        help=f"warehouse SQLite file (default: ./{WAREHOUSE_NAME}, or "
        "STATE_DIR's when --state-dir is given)",
    )
    parser.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="a repro serve/gateway state dir; uses DIR/" + WAREHOUSE_NAME,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ingest = sub.add_parser(
        "ingest", help="backfill JSON exports / BENCH files into the store"
    )
    ingest.add_argument("files", nargs="+", metavar="FILE")
    ingest.add_argument(
        "--fingerprint",
        default=None,
        help="source fingerprint rows land under (default: "
        "$REPRO_WAREHOUSE_FINGERPRINT or the current tree's)",
    )
    ingest.add_argument(
        "--tag", action="append", default=[], metavar="TAG",
        help="tag attached to ingested rows (repeatable)",
    )

    query = sub.add_parser("query", help="filter stored rows / aggregates")
    query.add_argument("--fingerprint", default=None)
    query.add_argument("--workload", default=None)
    query.add_argument("--design", default=None)
    query.add_argument("--config", default=None, metavar="DIGEST")
    query.add_argument("--tenant", default=None)
    query.add_argument(
        "--group-by",
        default=None,
        choices=("workload", "design", "config_digest", "tenant", "source"),
        help="print per-group row counts and geomean cycles instead of rows",
    )
    query.add_argument(
        "--format", choices=("text", "json", "csv"), default="text"
    )

    sub.add_parser("fingerprints", help="list stored fingerprints")

    diff = sub.add_parser(
        "diff", help="per-point cycle deltas between two fingerprints"
    )
    regressions = sub.add_parser(
        "regressions",
        help="CI gate: exit 1 when the candidate fingerprint is >= "
        "threshold slower than the baseline on any common point",
    )
    for cmd in (diff, regressions):
        cmd.add_argument(
            "--baseline", default=None,
            help="baseline fingerprint (default: next-newest in the store)",
        )
        cmd.add_argument(
            "--candidate", default=None,
            help="candidate fingerprint (default: newest in the store)",
        )
        cmd.add_argument(
            "--threshold", type=float, default=0.02, metavar="FRACTION",
            help="slowdown fraction that counts (default: 0.02 = 2%%)",
        )
        cmd.add_argument("--format", choices=("text", "json"), default="text")

    export = sub.add_parser(
        "export", help="dump stored rows (ResultSet export shape)"
    )
    export.add_argument("--fingerprint", default=None)
    export.add_argument("--workload", default=None)
    export.add_argument("--design", default=None)
    export.add_argument(
        "--format", choices=("csv", "json"), default="csv"
    )
    export.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write here instead of stdout",
    )

    view = sub.add_parser(
        "view", help="re-render a paper table from stored results"
    )
    view.add_argument("experiment", choices=VIEWABLE_EXPERIMENTS)
    view.add_argument("--fingerprint", default=None)
    view.add_argument(
        "--workloads", default=None,
        help="'all', 'quick', or comma-separated names (default: the "
        "stored set, in the order a direct run would use)",
    )

    compact = sub.add_parser(
        "compact", help="drop old fingerprints and VACUUM"
    )
    compact.add_argument(
        "--keep", type=int, default=8, metavar="N",
        help="fingerprints to keep, newest first (default: 8)",
    )

    bench = sub.add_parser("bench", help="print the stored BENCH history")
    bench.add_argument("--format", choices=("text", "json"), default="text")
    return parser


def _store_path(args: argparse.Namespace) -> str:
    if args.warehouse is not None:
        return args.warehouse
    if args.state_dir is not None:
        return os.path.join(args.state_dir, WAREHOUSE_NAME)
    return WAREHOUSE_NAME


def warehouse_main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    path = _store_path(args)
    if args.command != "ingest" and not os.path.exists(path):
        print(f"error: no warehouse at {path}", file=sys.stderr)
        return 2
    try:
        with WarehouseStore(path) as store:
            return _dispatch(args, store)
    except BrokenPipeError:  # head/less closed the pipe; not an error
        return 0
    except (WarehouseError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace, store: WarehouseStore) -> int:
    if args.command == "ingest":
        return _cmd_ingest(args, store)
    if args.command == "query":
        return _cmd_query(args, store)
    if args.command == "fingerprints":
        return _cmd_fingerprints(store)
    if args.command in ("diff", "regressions"):
        return _cmd_compare(args, store)
    if args.command == "export":
        return _cmd_export(args, store)
    if args.command == "view":
        return _cmd_view(args, store)
    if args.command == "compact":
        deleted = store.compact(keep=args.keep)
        print(f"compacted: {deleted} rows dropped, {store.count()} kept")
        return 0
    if args.command == "bench":
        return _cmd_bench(args, store)
    raise AssertionError(f"unhandled command {args.command!r}")


def _cmd_ingest(args: argparse.Namespace, store: WarehouseStore) -> int:
    total = 0
    for path in args.files:
        kind, count = ingest_file(
            store, path, fingerprint=args.fingerprint, tags=tuple(args.tag)
        )
        total += count
        print(f"{path}: {count} rows ({kind})")
    print(f"ingested {total} rows; store holds {store.count()} result rows")
    return 0


def _axis_filters(args: argparse.Namespace) -> Dict[str, Any]:
    filters: Dict[str, Any] = {}
    if args.workload is not None:
        filters["workload"] = args.workload
    if args.design is not None:
        filters["design"] = args.design
    if getattr(args, "config", None) is not None:
        filters["config_digest"] = args.config
    if getattr(args, "tenant", None) is not None:
        filters["tenant"] = args.tenant
    return filters


def _cmd_query(args: argparse.Namespace, store: WarehouseStore) -> int:
    query = Query(store, fingerprint=args.fingerprint).where(
        **_axis_filters(args)
    )
    if args.group_by is not None:
        rows = [
            {
                args.group_by: key,
                "points": len(group.rows()),
                "geomean_cycles": round(group.geomean_cycles(), 1),
            }
            for key, group in query.group_by(args.group_by).items()
        ]
        print(_tabulate(rows, args.format))
        return 0
    rows = [
        {**row.export_row(), "fingerprint": row.fingerprint}
        for row in query.rows()
    ]
    print(_tabulate(rows, args.format))
    return 0


def _cmd_fingerprints(store: WarehouseStore) -> int:
    rows = [info.as_dict() for info in store.fingerprints()]
    print(_tabulate(rows, "text"))
    return 0


def _cmd_compare(args: argparse.Namespace, store: WarehouseStore) -> int:
    baseline, candidate = resolve_fingerprints(
        store, args.baseline, args.candidate
    )
    report = compare_fingerprints(
        store, baseline, candidate, threshold=args.threshold
    )
    if args.format == "json":
        payload = report.as_dict()
        if args.command == "diff":
            payload["deltas"] = [d.as_dict() for d in report.deltas]
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"baseline {baseline} vs candidate {candidate} "
            f"({len(report.deltas)} common points, threshold "
            f"{report.threshold:+.1%})"
        )
        shown = (
            report.deltas
            if args.command == "diff"
            else tuple(report.regressions + report.improvements)
        )
        rows = [
            {
                "workload": d.workload,
                "design": d.design,
                "baseline": d.baseline_cycles,
                "candidate": d.candidate_cycles,
                "ratio": f"{d.ratio:.4f}",
            }
            for d in shown
        ]
        if rows:
            print(_tabulate(rows, "text"))
        if report.missing or report.new:
            print(
                f"note: {report.missing} baseline-only, "
                f"{report.new} candidate-only points not compared"
            )
        verdict = (
            "no regressions"
            if report.ok
            else f"{len(report.regressions)} regression(s)"
        )
        print(f"verdict: {verdict}")
    if args.command == "regressions" and not report.ok:
        return 1
    return 0


def _cmd_export(args: argparse.Namespace, store: WarehouseStore) -> int:
    query = Query(store, fingerprint=args.fingerprint).where(
        **{
            axis: value
            for axis, value in (
                ("workload", args.workload),
                ("design", args.design),
            )
            if value is not None
        }
    )
    rows = query.export_rows()
    text = (
        rows_to_csv(rows)
        if args.format == "csv"
        else json.dumps(rows, indent=2) + "\n"
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(rows)} rows to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_view(args: argparse.Namespace, store: WarehouseStore) -> int:
    print(
        render_view(
            store,
            args.experiment,
            fingerprint=args.fingerprint,
            workloads=args.workloads,
        )
    )
    return 0


def _cmd_bench(args: argparse.Namespace, store: WarehouseStore) -> int:
    history = store.bench_history()
    if args.format == "json":
        print(json.dumps(history, indent=2))
        return 0
    rows = [
        {
            "timestamp": entry.get("timestamp"),
            "schema": entry.get("schema_version"),
            "kernel_speedup": entry.get("kernel_speedup", ""),
            "native_speedup": entry.get("native_speedup", ""),
            "columns_speedup": entry.get("columns_speedup", ""),
        }
        for entry in history
    ]
    print(_tabulate(rows, "text"))
    return 0


def _tabulate(rows: List[Dict[str, Any]], fmt: str) -> str:
    if fmt == "json":
        return json.dumps(rows, indent=2)
    if fmt == "csv":
        import csv
        import io

        out = io.StringIO()
        columns = list(rows[0]) if rows else []
        writer = csv.writer(out, lineterminator="\n")
        writer.writerow(columns)
        for row in rows:
            writer.writerow(
                "" if row.get(c) is None else row.get(c) for c in columns
            )
        return out.getvalue().rstrip("\n")
    if not rows:
        return "(no rows)"
    from repro.experiments.runner import format_table

    return format_table(rows, list(rows[0]))
