"""The warehouse's ingest layer: event-stream writer plus JSON backfill.

:class:`WarehouseIngestor` is a scheduler listener — the same
:class:`~repro.api.jobs.JobEvent` hook the gateway's
:class:`~repro.api.gateway.usage.UsageService` rides — that lands every
``point-done`` and ``cache-hit`` in the store as it happens.  Because the
scheduler emits ``prepared`` before any point event and resolves results
into the artifact memo first, the listener can look the full
:class:`~repro.uarch.core.SimulationResult` up by key instead of widening
the event wire format.

Attach the listener *before* :func:`repro.api.journal.resume_jobs` runs
(``repro serve --state-dir`` and ``repro gateway`` both do): a resumed
job's already-completed points replay as ``cache-hit`` events, so a crash
mid-ingest converges back to the exact store an uninterrupted run produces
— the store's idempotent upsert makes the replay safe.

:func:`ingest_file` is the batch half: it sniffs and backfills the JSON
artifacts that predate the warehouse — full-fidelity ``ResultSet.to_wire``
payloads, lossy ``export_rows`` dumps, and the ``BENCH_engine.json`` /
``BENCH_trajectory.json`` perf history.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.api.jobs import JobEvent
from repro.api.results import ResultSet
from repro.warehouse.store import (
    SOURCE_BACKFILL,
    SOURCE_EVENT,
    WarehouseRow,
    WarehouseStore,
)

#: Overrides the source-tree fingerprint rows are keyed under — how CI runs
#: the same tree under two pretend fingerprints to exercise the regression
#: gate, and how backfills pin the tree that actually produced a file.
FINGERPRINT_ENV = "REPRO_WAREHOUSE_FINGERPRINT"


def default_fingerprint() -> str:
    """The fingerprint rows land under: the env override, else the tree's."""
    override = os.environ.get(FINGERPRINT_ENV)
    if override:
        return override
    from repro.pipeline.hashing import code_fingerprint

    return code_fingerprint()


class WarehouseIngestor:
    """Land every answered point from the event stream into the store."""

    def __init__(
        self,
        store: WarehouseStore,
        service,
        fingerprint: Optional[str] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.store = store
        self.service = service
        self.fingerprint = fingerprint or default_fingerprint()
        self.clock = clock
        self._lock = threading.Lock()
        self._tags: Dict[str, Tuple[str, ...]] = {}
        #: Points landed through this listener, for tests and stats.
        self.ingested = 0

    def on_event(self, event: JobEvent) -> None:
        """The scheduler listener.  Exceptions are swallowed by the
        emitting :class:`JobHandle` (a broken store must not kill jobs)."""
        if event.kind == "queued":
            payload = event.payload or {}
            with self._lock:
                self._tags[event.job_id] = tuple(payload.get("tags") or ())
        elif event.kind in ("point-done", "cache-hit") and event.request is not None:
            self._ingest_point(event)
        elif event.terminal:
            with self._lock:
                self._tags.pop(event.job_id, None)

    def _ingest_point(self, event: JobEvent) -> None:
        from repro.api.gateway.usage import tenant_from_tags
        from repro.engine.kernels import engine_tier

        request = event.request
        artifact = self.service.artifact(request.workload)
        result = artifact.cached_simulation(request.key())
        if result is None:  # pragma: no cover - the scheduler resolves
            return  # results into the memo before emitting the event
        with self._lock:
            tags = self._tags.get(event.job_id, ())
        self.store.upsert(
            WarehouseRow.from_entry(
                request,
                result,
                fingerprint=self.fingerprint,
                recorded=self.clock(),
                engine_tier=engine_tier(),
                job_id=event.job_id,
                tags=tags,
                tenant=tenant_from_tags(tags),
                source=SOURCE_EVENT,
            )
        )
        with self._lock:
            self.ingested += 1


def attach_ingestor(
    service, store: WarehouseStore, fingerprint: Optional[str] = None
) -> WarehouseIngestor:
    """Wire an ingestor onto a service's scheduler; returns the listener."""
    ingestor = WarehouseIngestor(store, service, fingerprint=fingerprint)
    service.scheduler.add_listener(ingestor.on_event)
    return ingestor


# ---------------------------------------------------------------------- #
# Backfill
# ---------------------------------------------------------------------- #
def ingest_file(
    store: WarehouseStore,
    path: str,
    fingerprint: Optional[str] = None,
    tags: Sequence[str] = (),
    recorded: Optional[float] = None,
) -> Tuple[str, int]:
    """Backfill one JSON artifact; returns ``(kind, rows)``.

    Sniffs the payload shape:

    * ``ResultSet.to_wire`` output (``{"version": ..., "entries": [...]}``)
      → full-fidelity rows;
    * ``ResultSet.export_rows`` / ``to_json`` output (a list of axis/cycles
      dicts) → columnar rows without request/result JSON;
    * ``BENCH_engine.json`` (a dict with ``schema_version``) → one bench
      entry stamped with the file's mtime;
    * ``BENCH_trajectory.json`` (a list of dicts with ``schema_version``
      and ``timestamp``) → one bench entry each.

    ``recorded`` defaults to the file's mtime — the caller-passed
    timestamp discipline keeps replays deterministic.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    fingerprint = fingerprint or default_fingerprint()
    recorded = os.path.getmtime(path) if recorded is None else recorded

    if isinstance(payload, dict) and "entries" in payload:
        count = _ingest_wire(store, payload, fingerprint, tags, recorded)
        return "resultset-wire", count
    if isinstance(payload, dict) and "schema_version" in payload:
        store.record_bench(payload, timestamp=_mtime_stamp(recorded))
        return "bench-engine", 1
    if isinstance(payload, list) and payload and _looks_like_rows(payload):
        count = _ingest_rows(store, payload, fingerprint, tags, recorded)
        return "result-rows", count
    if isinstance(payload, list) and all(
        isinstance(entry, dict) and "schema_version" in entry for entry in payload
    ):
        for entry in payload:
            store.record_bench(
                entry, timestamp=str(entry.get("timestamp") or _mtime_stamp(recorded))
            )
        return "bench-trajectory", len(payload)
    raise ValueError(
        f"{path}: unrecognized payload shape — expected a ResultSet wire "
        "dump, an export_rows list, or a BENCH engine/trajectory file"
    )


def _mtime_stamp(recorded: float) -> str:
    import datetime

    stamp = datetime.datetime.fromtimestamp(recorded, datetime.timezone.utc)
    return stamp.strftime("%Y-%m-%dT%H:%M:%SZ")


def _looks_like_rows(payload: List[Any]) -> bool:
    required = {"workload", "design", "cycles"}
    return all(
        isinstance(entry, dict) and required.issubset(entry) for entry in payload
    )


def _ingest_wire(
    store: WarehouseStore,
    payload: Dict[str, Any],
    fingerprint: str,
    tags: Sequence[str],
    recorded: float,
) -> int:
    results = ResultSet.from_wire(json.dumps(payload))
    rows = [
        WarehouseRow.from_entry(
            request,
            result,
            fingerprint=fingerprint,
            recorded=recorded,
            tags=tuple(tags),
            source=SOURCE_BACKFILL,
        )
        for request, result in results
    ]
    return store.upsert_many(rows)


def _ingest_rows(
    store: WarehouseStore,
    payload: List[Dict[str, Any]],
    fingerprint: str,
    tags: Sequence[str],
    recorded: float,
) -> int:
    rows = []
    for entry in payload:
        flush = entry.get("btu_flush_interval")
        warmup = int(entry.get("warmup_passes", 1))
        config_digest = str(entry.get("config", ""))
        sort_key = [
            str(entry["workload"]),
            str(entry["design"]),
            config_digest,
            flush is not None,
            flush or 0,
            warmup,
        ]
        rows.append(
            WarehouseRow(
                point_key=json.dumps(sort_key, separators=(",", ":")),
                fingerprint=fingerprint,
                workload=str(entry["workload"]),
                design=str(entry["design"]),
                config_digest=config_digest,
                btu_flush_interval=flush,
                warmup_passes=warmup,
                cycles=int(entry["cycles"]),
                instructions=entry.get("instructions"),
                ipc=entry.get("ipc"),
                recorded=recorded,
                tags=tuple(tags),
                source=SOURCE_BACKFILL,
            )
        )
    return store.upsert_many(rows)
