"""The shard wire format and worker: simulation batches over pipes.

This module defines the task/wire shape the distributed-sharding direction
reuses: one :class:`ShardTask` per workload carries the preserialized
columnar trace (:meth:`LoweredTrace.to_bytes`), the pickled
:class:`TraceBundle` the Cassandra-family policies replay, and the JSON
:class:`~repro.api.request.SimulationRequest` batch to time over it.  A
worker needs *nothing* from the parent's address space — no fork
copy-on-write, no shared memory — so the same payloads that cross a pipe
today can cross a socket to another host tomorrow.

Framing is length-prefixed (8-byte big-endian size, then the payload); a
worker (``python -m repro.api.shard``) loops read-task → simulate →
write-results until EOF on stdin.  Responses are the pickled
:class:`~repro.uarch.core.SimulationResult` list in task-request order.
"""

from __future__ import annotations

import pickle
import struct
import sys
from dataclasses import dataclass
from typing import BinaryIO, List, Optional, Tuple

#: Framing header: payload byte count as an unsigned 64-bit big-endian int.
_HEADER = struct.Struct(">Q")

#: Fault-injection hook (see :mod:`repro.testing.faults`).  ``None`` in
#: production; when armed it is called as ``FAULT_HOOK(site, **context)``
#: at every framing/worker site and may raise or kill the process.
FAULT_HOOK = None

#: Bump when the task layout changes; workers reject other versions.
SHARD_FORMAT_VERSION = 1


class ShardWorkerError(RuntimeError):
    """A shard worker died (EOF / truncated frame) with work outstanding.

    Names the worker and carries the requests that were pending on it so
    the owning backend can requeue them onto surviving workers — the shared
    recovery path for subprocess-pipe and remote-socket worker loss alike.
    """

    def __init__(
        self,
        worker: str,
        workload: Optional[str],
        requests: Tuple["SimulationRequest", ...] = (),  # noqa: F821
        reason: str = "exited unexpectedly",
    ) -> None:
        self.worker = worker
        self.workload = workload
        self.requests = tuple(requests)
        scope = f" while computing workload {workload!r}" if workload else ""
        pending = f" ({len(self.requests)} pending request(s))" if self.requests else ""
        super().__init__(f"shard worker {worker} {reason}{scope}{pending}")


@dataclass(frozen=True)
class ShardTask:
    """One worker task: every request of one workload, plus its inputs."""

    workload: str
    program_name: str
    #: JSON-serialized :class:`SimulationRequest`\ s (the portable half of
    #: the wire format; see :meth:`SimulationRequest.to_json`).
    request_payloads: Tuple[str, ...]
    #: The workload's columnar trace, preserialized by the parent.
    trace_bytes: bytes
    #: The pickled :class:`TraceBundle` (hint table + hardware traces).
    bundle_bytes: bytes

    def requests(self) -> List["SimulationRequest"]:  # noqa: F821
        from repro.api.request import SimulationRequest

        return [SimulationRequest.from_json(text) for text in self.request_payloads]

    def to_bytes(self) -> bytes:
        return pickle.dumps(
            (
                SHARD_FORMAT_VERSION,
                self.workload,
                self.program_name,
                self.request_payloads,
                self.trace_bytes,
                self.bundle_bytes,
            ),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    @classmethod
    def from_bytes(cls, payload: bytes) -> "ShardTask":
        decoded = pickle.loads(payload)
        if not isinstance(decoded, tuple) or decoded[0] != SHARD_FORMAT_VERSION:
            raise ValueError(
                f"unsupported shard task payload (want version {SHARD_FORMAT_VERSION})"
            )
        _, workload, program_name, request_payloads, trace_bytes, bundle_bytes = decoded
        return cls(
            workload=workload,
            program_name=program_name,
            request_payloads=tuple(request_payloads),
            trace_bytes=trace_bytes,
            bundle_bytes=bundle_bytes,
        )


# --------------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------------- #
def write_frame(stream: BinaryIO, payload: bytes) -> None:
    if FAULT_HOOK is not None:
        FAULT_HOOK("frame-write", stream=stream, payload=payload)
    stream.write(_HEADER.pack(len(payload)))
    stream.write(payload)
    stream.flush()


def read_frame(stream: BinaryIO) -> Optional[bytes]:
    """The next frame's payload, or ``None`` on a clean EOF."""
    if FAULT_HOOK is not None:
        FAULT_HOOK("frame-read", stream=stream)
    header = stream.read(_HEADER.size)
    if not header:
        return None
    if len(header) != _HEADER.size:
        raise EOFError("truncated shard frame header")
    (size,) = _HEADER.unpack(header)
    payload = b""
    while len(payload) < size:
        chunk = stream.read(size - len(payload))
        if not chunk:
            raise EOFError("truncated shard frame payload")
        payload += chunk
    return payload


# --------------------------------------------------------------------------- #
# Worker
# --------------------------------------------------------------------------- #
def run_task(task: ShardTask) -> List["SimulationResult"]:  # noqa: F821
    """Simulate one task's request batch from its wire payloads alone."""
    from repro.engine.batch import PointSpec, simulate_batch
    from repro.engine.lowering import LoweredTrace
    from repro.experiments.runner import DESIGN_BUILDERS

    bundle = pickle.loads(task.bundle_bytes) if task.bundle_bytes else None
    trace = LoweredTrace.from_bytes(task.trace_bytes)
    requests = task.requests()
    specs = [
        PointSpec(
            policy=DESIGN_BUILDERS[request.design](bundle),
            config=request.config,
            btu_flush_interval=request.btu_flush_interval,
            warmup_passes=request.warmup_passes,
        )
        for request in requests
    ]
    return simulate_batch(
        None, bundle, specs, trace=trace, program_name=task.program_name
    )


def main() -> int:
    """The worker loop: framed tasks on stdin, framed result lists on stdout."""
    from repro.testing.faults import activate_from_env

    activate_from_env()
    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    while True:
        payload = read_frame(stdin)
        if payload is None:
            return 0
        if FAULT_HOOK is not None:
            FAULT_HOOK("worker-task")
        results = run_task(ShardTask.from_bytes(payload))
        write_frame(stdout, pickle.dumps(results, protocol=pickle.HIGHEST_PROTOCOL))


if __name__ == "__main__":  # pragma: no cover - exercised via the shard backend
    sys.exit(main())
