"""The networked tier: ``repro serve``, its client, and socket sharding.

The multi-host protocol the ROADMAP promised, built from pieces that
already exist: :class:`~repro.api.shard.ShardTask` frames move over TCP
sockets instead of pipes, and job control is a small JSON vocabulary —
``submit`` / ``events`` / ``cancel`` / ``ping`` — over the same
length-prefixed framing.  Three roles live here:

* :class:`JobServer` — the long-lived ``repro serve --port N`` process: it
  wraps one :class:`~repro.api.service.SimulationService` (and hence one
  scheduler, artifact cache, and backend) and serves any number of
  clients.  A ``submit`` connection streams the job's typed
  :class:`~repro.api.jobs.JobEvent`\\ s frame-for-frame and finishes with
  the full-fidelity :meth:`ResultSet.to_wire` payload; ``cancel`` works
  both in-band (on the submit connection) and by job id from anywhere.
* :class:`RemoteServiceClient` / :class:`RemoteJobHandle` — the
  ``SimulationService``-shaped client: ``submit(...)`` returns a handle
  whose ``events()`` / ``result()`` / ``cancel()`` mirror the local
  :class:`~repro.api.jobs.JobHandle`, with results rehydrated client-side
  via :meth:`ResultSet.from_wire`.  :class:`RemoteBackend` adapts the
  client to the :class:`~repro.api.backends.ExecutionBackend` contract, so
  ``python -m repro ... --backend remote --connect host:port`` runs every
  simulation point on the server while the experiments render locally.
* :class:`RemoteShardBackend` — sockets instead of worker pipes: workers
  (``python -m repro.api.remote --connect host:port``) dial in and
  register, the backend ships each pending workload group as a
  :class:`ShardTask` frame, heartbeats idle workers, and on worker loss
  requeues the task onto the surviving workers with the dead worker
  recorded in the task's ``excluded`` set — the
  :class:`~repro.api.shard.ShardWorkerError` recovery semantics shared
  with the subprocess backend.

All tiers are bit-identical to :class:`~repro.api.backends.SerialBackend`;
``tests/api/test_remote.py`` and the CI serve/client leg pin it.
"""

from __future__ import annotations

import json
import os
import pickle
import socket
import sys
import threading
import time
import weakref
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.api import shard as _shard
from repro.api.backends import ExecutionBackend, SubprocessShardBackend
from repro.api.jobs import JobCancelled, JobEvent
from repro.api.matrix import ScenarioMatrix, expand_many
from repro.api.request import SimulationRequest
from repro.api.results import ResultSet
from repro.api.retry import RetryPolicy
from repro.api.shard import (
    ShardTask,
    ShardWorkerError,
    read_frame,
    run_task,
    write_frame,
)

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.api.service import RequestsLike, SimulationService
    from repro.experiments.runner import WorkloadArtifacts

#: Bump when the control vocabulary or frame layout changes; both ends
#: reject other versions instead of mis-parsing them.
REMOTE_PROTOCOL_VERSION = 1

#: One-byte frame tags on a registered worker channel.  Everything before
#: registration (and every job-control frame) is JSON; after it the channel
#: carries tagged binary frames so :class:`ShardTask` payloads and pickled
#: result lists never pass through a text layer.
TAG_TASK = b"T"
TAG_RESULT = b"R"
TAG_PING = b"P"
TAG_PONG = b"O"


class RemoteJobError(RuntimeError):
    """A server-side job failed; carries the server's error text."""


# --------------------------------------------------------------------------- #
# Wire helpers
# --------------------------------------------------------------------------- #
def parse_address(address: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    """``"host:port"`` (or an already-split pair) → ``(host, port)``."""
    if isinstance(address, (tuple, list)):
        host, port = address
        return str(host), int(port)
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"remote address {address!r} must be host:port")
    return host or "127.0.0.1", int(port)


def send_json(stream, payload: Dict[str, Any]) -> None:
    write_frame(stream, json.dumps(payload, sort_keys=True).encode("utf-8"))


def recv_json(stream) -> Optional[Dict[str, Any]]:
    """The next JSON control frame, or ``None`` on a clean EOF."""
    payload = read_frame(stream)
    if payload is None:
        return None
    return json.loads(payload.decode("utf-8"))


def _close_sockets_after_fork(owner, sockets: Callable[[Any], Iterable[Any]]) -> None:
    """Close ``owner``'s sockets in any child this process forks.

    The fork and fork-pool backends fork workers that inherit every open
    file descriptor.  A worker orphaned by a server crash (``kill -9``)
    would otherwise keep the listen port alive — new clients dial into a
    backlog nobody accepts and hang instead of getting a prompt
    connection-refused — and keep established client connections from
    seeing EOF until the last worker exits.  Closing the descriptors in
    the child only drops the child's references; the parent's sockets are
    untouched.

    ``os.register_at_fork`` callbacks cannot be unregistered, so the
    callback holds a weakref and turns into a no-op once the owner is
    collected.  It must not take locks: another thread may hold them at
    fork time and will not exist in the child to release them.  And it
    must close the raw descriptor, not call ``socket.close()``: the
    connection handlers hold ``makefile()`` streams whose io-references
    make ``close()`` defer the real close indefinitely in the child.
    """
    ref = weakref.ref(owner)

    def close_in_child() -> None:
        alive = ref()
        if alive is None:
            return
        for sock in list(sockets(alive)):
            try:
                fd = sock.detach()
                if fd >= 0:
                    os.close(fd)
            except Exception:  # pragma: no cover - best effort in the child
                pass

    os.register_at_fork(after_in_child=close_in_child)


# --------------------------------------------------------------------------- #
# Server
# --------------------------------------------------------------------------- #
class JobServer:
    """``repro serve``: one shared service, many socket clients.

    Every connection opens with one JSON frame naming an ``op``:

    ``ping``
        → ``{"ok", "server", "protocol", "version", "workloads", "backend"}``.
    ``workloads``
        → the server's configured workload names (what open matrices
        expand over).
    ``submit``
        ``{"requests": [...], "priority": N, "tags": [...]}`` → an ack
        frame ``{"ok": true, "job": id}``, then one frame per
        :class:`JobEvent`, then a terminal frame: ``{"result": wire}`` /
        ``{"cancelled": true, "partial": wire}`` / ``{"error": text}``.
        A ``{"op": "cancel"}`` frame sent back up the same connection —
        or the client disconnecting — cancels the job.
    ``events``
        ``{"job": id}`` → the same stream for an existing job (history
        replayed first).
    ``cancel``
        ``{"job": id}`` → ``{"ok": bool}``.
    """

    def __init__(
        self,
        service: "SimulationService",
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(16)
        self.host, self.port = self._sock.getsockname()[:2]
        self._closed = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._conns: Set[socket.socket] = set()
        self._conns_lock = threading.Lock()
        _close_sockets_after_fork(
            self, lambda server: [server._sock, *server._conns]
        )

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "JobServer":
        """Accept connections on a background thread; returns self."""
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Run the accept loop in the calling thread (the CLI entry)."""
        self._accept_loop()

    def close(self) -> None:
        self._closed.set()
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def drain(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: stop accepting, stop jobs at their next round
        boundary, checkpoint the journal, return.

        With a journal attached its ``draining`` flag is set first, so the
        ``cancelled`` events this induces are *not* journaled as terminal —
        the interrupted jobs stay pending and resume on the next start
        (their completed points are already journaled and disk-cached).
        """
        self.close()
        journal = self.service.journal
        if journal is not None:
            journal.draining = True
        scheduler = self.service._scheduler
        if scheduler is not None:
            for job in scheduler.jobs():
                if not job.done:
                    job.cancel()
            deadline = time.monotonic() + timeout
            for job in scheduler.jobs():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                job._finished.wait(remaining)
            scheduler.close()
        if journal is not None:
            journal.checkpoint()
            journal.close()

    def _accept_loop(self) -> None:
        self._sock.settimeout(0.2)
        while not self._closed.is_set():
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._conns_lock:
                self._conns.add(conn)
            threading.Thread(
                target=self._handle_connection, args=(conn,), daemon=True
            ).start()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    def _handle_connection(self, conn: socket.socket) -> None:
        stream = conn.makefile("rwb")
        try:
            message = recv_json(stream)
            if message is None:
                return
            op = message.get("op")
            if op == "ping":
                send_json(
                    stream,
                    {
                        "ok": True,
                        "server": "repro-serve",
                        "protocol": REMOTE_PROTOCOL_VERSION,
                        "workloads": self.service.workloads,
                        "backend": self.service.backend.name,
                    },
                )
            elif op == "workloads":
                send_json(stream, {"ok": True, "workloads": self.service.workloads})
            elif op == "submit":
                self._serve_submit(stream, message)
            elif op == "events":
                handle = self.service.scheduler.get_job(str(message.get("job")))
                if handle is None:
                    send_json(stream, {"ok": False, "error": "unknown job"})
                else:
                    after_seq = message.get("after_seq")
                    send_json(stream, {"ok": True, "job": handle.job_id})
                    # An observer does not own the job: its disconnect must
                    # not cancel work the submitter is still waiting on.
                    self._stream_job(
                        stream,
                        handle,
                        owner=False,
                        after_seq=int(after_seq) if after_seq is not None else None,
                    )
            elif op == "cancel":
                handle = self.service.scheduler.get_job(str(message.get("job")))
                send_json(
                    stream,
                    {"ok": bool(handle is not None and handle.cancel())},
                )
            else:
                send_json(stream, {"ok": False, "error": f"unknown op {op!r}"})
        except (OSError, ValueError, EOFError):
            pass  # client went away or spoke garbage; the job (if any) survives
        finally:
            for closer in (stream.close, conn.close):
                try:
                    closer()
                except OSError:
                    pass
            with self._conns_lock:
                self._conns.discard(conn)

    def _serve_submit(self, stream, message: Dict[str, Any]) -> None:
        protocol = message.get("protocol", REMOTE_PROTOCOL_VERSION)
        if protocol != REMOTE_PROTOCOL_VERSION:
            send_json(
                stream,
                {
                    "ok": False,
                    "error": f"protocol {protocol!r} unsupported "
                    f"(server speaks {REMOTE_PROTOCOL_VERSION})",
                },
            )
            return
        try:
            requests = [
                SimulationRequest.from_dict(payload)
                for payload in message["requests"]
            ]
            handle = self.service.submit(
                requests,
                priority=int(message.get("priority", 0)),
                tags=tuple(message.get("tags", ())),
            )
        except (KeyError, TypeError, ValueError) as exc:
            # A malformed frame must answer, not strand the client waiting
            # for an ack that will never come.
            send_json(stream, {"ok": False, "error": f"bad submit frame: {exc}"})
            return
        send_json(stream, {"ok": True, "job": handle.job_id})
        # ``on_disconnect: "keep"`` marks a reconnecting client: its job
        # must survive a dropped connection (it will re-attach by id).
        # The protocol default stays "cancel" so old clients keep the
        # nobody-is-waiting-anymore semantics.
        self._stream_job(
            stream, handle, owner=message.get("on_disconnect", "cancel") != "keep"
        )

    def _stream_job(
        self,
        stream,
        handle,
        owner: bool = True,
        after_seq: Optional[int] = None,
    ) -> None:
        """Forward a job's events, watching for in-band cancel frames.

        ``owner`` marks the submitting connection: only *its* disconnect
        cancels the job (nobody is waiting for the answer); an observer
        attached via the ``events`` op can come and go freely.
        ``after_seq`` resumes a stream mid-way (events at or below it are
        skipped — the reconnect replay path).
        """
        stop = threading.Event()

        def watch() -> None:
            # Reads run concurrently with the event writes below.
            while not stop.is_set():
                try:
                    message = recv_json(stream)
                except (OSError, ValueError, EOFError):
                    message = None
                if message is None:
                    if owner and not handle.done:
                        handle.cancel()
                    return
                if message.get("op") == "cancel":
                    handle.cancel()

        watcher = threading.Thread(target=watch, daemon=True)
        watcher.start()
        try:
            for event in handle.events(after_seq=after_seq):
                send_json(stream, {"event": event.as_dict()})
            try:
                result = handle.result()
                send_json(stream, {"result": result.to_wire()})
            except JobCancelled:
                send_json(
                    stream,
                    {"cancelled": True, "partial": handle.partial().to_wire()},
                )
            except BaseException as exc:  # noqa: BLE001 - forwarded as text
                send_json(stream, {"error": f"{type(exc).__name__}: {exc}"})
        finally:
            stop.set()


def serve(
    service: "SimulationService", host: str = "127.0.0.1", port: int = 0
) -> JobServer:
    """Start a :class:`JobServer` on a background thread and return it."""
    return JobServer(service, host=host, port=port).start()


# --------------------------------------------------------------------------- #
# Client
# --------------------------------------------------------------------------- #
class RemoteJobHandle:
    """The client-side view of a job running on a ``repro serve`` server.

    Mirrors :class:`~repro.api.jobs.JobHandle`: :meth:`events` streams the
    server's typed events as they happen, :meth:`result` blocks for (and
    rehydrates) the final :class:`ResultSet`, :meth:`cancel` asks the
    server to stop.  One consumer at a time: the handle owns a single
    socket.

    When constructed by a client whose :class:`~repro.api.retry.RetryPolicy`
    allows ``reconnect``, a dropped connection (reset, EOF, read timeout)
    is transparent: the handle re-attaches by job id with the policy's
    backoff and resumes the stream from the last seen event ``seq`` — the
    server replays only the gap, and duplicates are filtered here, so a
    flaky network no longer kills a client sweep.
    """

    #: Errors a reconnect may heal.  A read timeout is included because a
    #: timed-out buffered stream may hold a partial frame — the stream is
    #: never reused after any of these, only replaced by a fresh attach.
    _RETRYABLE = (OSError, EOFError, ValueError)

    def __init__(
        self,
        job_id: str,
        requests: Sequence[SimulationRequest],
        sock: socket.socket,
        stream,
        client: Optional["RemoteServiceClient"] = None,
    ) -> None:
        self.job_id = job_id
        self.requests = tuple(requests)
        self.state = "queued"
        self._sock = sock
        self._stream = stream
        self._client = client
        self._final: Optional[Dict[str, Any]] = None
        self._drained = False
        self._last_seq = -1
        self._deadline: Optional[float] = None
        self._timeout: Optional[float] = None

    @property
    def done(self) -> bool:
        return self._drained

    # ------------------------------------------------------------------ #
    # Stream plumbing
    # ------------------------------------------------------------------ #
    def _io_timeout(self) -> Optional[float]:
        if self._client is not None:
            return self._client.retry.io_timeout
        return None

    def _recv(self) -> Optional[Dict[str, Any]]:
        """One frame, honoring the result() deadline and the io timeout."""
        limit = self._io_timeout()
        if self._deadline is not None:
            remaining = self._deadline - time.monotonic()
            limit = remaining if limit is None else min(limit, remaining)
        try:
            self._sock.settimeout(limit)
        except OSError:
            pass  # closed underneath us; the read below reports it
        return recv_json(self._stream)

    def _expired(self) -> bool:
        return self._deadline is not None and time.monotonic() >= self._deadline

    def _try_reconnect(self) -> bool:
        """Replace the dead socket via attach-by-id; True on success."""
        if self._client is None or not self._client.retry.reconnect:
            return False
        self._close()
        try:
            fresh = self._client.attach(self.job_id, after_seq=self._last_seq)
        except (OSError, EOFError, RemoteJobError):
            return False
        self._sock, self._stream = fresh._sock, fresh._stream
        return True

    def events(self) -> Iterator[JobEvent]:
        """Stream events until the terminal one; then the stream ends."""
        while not self._drained:
            if self._expired():
                self._close()
                raise TimeoutError(
                    f"job {self.job_id} still {self.state} after {self._timeout}s"
                )
            try:
                message = self._recv()
            except self._RETRYABLE as exc:
                if self._expired():
                    self._close()
                    raise TimeoutError(
                        f"job {self.job_id} still {self.state} "
                        f"after {self._timeout}s"
                    ) from exc
                if self._try_reconnect():
                    continue
                self._drained = True
                self._close()
                raise ConnectionError(
                    f"lost connection to job {self.job_id}: {exc}"
                ) from exc
            if message is None:
                if self._try_reconnect():
                    continue
                self._drained = True
                self._close()
                raise ConnectionError(
                    f"server closed the connection mid-job ({self.job_id})"
                )
            if "event" not in message:
                # The final frame arrived (an events-replay of a finished
                # job can open with it, and it always follows the terminal
                # event).
                self._final = message
                self._drained = True
                self._close()
                return
            event = JobEvent.from_dict(message["event"])
            if event.seq <= self._last_seq:
                continue  # a reconnect replayed something already seen
            self._last_seq = event.seq
            if event.kind in ("queued", "point-started"):
                self.state = "running"
            if event.terminal:
                self.state = event.kind
            yield event

    def result(self, timeout: Optional[float] = None) -> ResultSet:
        """Drain remaining events and return the rehydrated result set.

        ``timeout`` is an overall deadline for this call only: it bounds
        every read, and — unlike the old behavior, which left the override
        on the socket — the connection's default io timeout is restored
        afterwards whether the call returns, times out, or raises.
        """
        if timeout is not None:
            self._timeout = timeout
            self._deadline = time.monotonic() + timeout
        try:
            for _event in self.events():
                pass
        finally:
            self._deadline = None
            self._timeout = None
            if not self._drained:
                try:
                    self._sock.settimeout(self._io_timeout())
                except OSError:
                    pass
        final = self._final
        if final is None:
            raise ConnectionError(f"no final frame for job {self.job_id}")
        if "result" in final:
            self.state = "done"
            return ResultSet.from_wire(final["result"])
        if final.get("cancelled"):
            self.state = "cancelled"
            raise JobCancelled(f"job {self.job_id} was cancelled on the server")
        self.state = "failed"
        raise RemoteJobError(final.get("error", "remote job failed"))

    def partial(self) -> ResultSet:
        """Completed points of a cancelled job (empty otherwise)."""
        if self._final and self._final.get("cancelled"):
            return ResultSet.from_wire(self._final["partial"])
        return ResultSet()

    def cancel(self) -> bool:
        """Send the in-band cancel frame (False once the job finished)."""
        if self._drained:
            return False
        try:
            send_json(self._stream, {"op": "cancel"})
        except OSError:
            return False
        return True

    def _close(self) -> None:
        for closer in (self._stream.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass


class RemoteServiceClient:
    """A :class:`SimulationService`-shaped front end over a socket.

    ``run`` / ``submit`` / ``expand`` / ``workloads`` mirror the local
    service; execution happens wherever ``repro serve`` is running.  Open
    matrices expand over the *server's* configured workload set (fetched
    once and cached).
    """

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.address = parse_address(address)
        self.timeout = timeout
        if retry is None:
            # Legacy ``timeout`` maps onto the policy's two timeout knobs;
            # everything else gets the uniform defaults.
            retry = (
                RetryPolicy()
                if timeout is None
                else RetryPolicy(connect_timeout=timeout, io_timeout=timeout)
            )
        self.retry = retry
        self._workloads: Optional[List[str]] = None

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def _dial(self):
        """One connection attempt (the policy's drivers wrap this)."""
        sock = socket.create_connection(
            self.address, timeout=self.retry.connect_timeout
        )
        sock.settimeout(self.retry.io_timeout)
        return sock, sock.makefile("rwb")

    def _connect(self):
        return self.retry.call(self._dial, token=f"dial:{self.address}")

    def _roundtrip(self, message: Dict[str, Any]) -> Dict[str, Any]:
        # One-shot ops (ping / workloads / cancel) are idempotent, so the
        # whole exchange retries under the policy, not just the dial.
        def attempt() -> Dict[str, Any]:
            sock, stream = self._dial()
            try:
                send_json(stream, message)
                answer = recv_json(stream)
            finally:
                stream.close()
                sock.close()
            if answer is None:
                raise ConnectionError(
                    f"no answer from {self.address} for {message['op']}"
                )
            return answer

        return self.retry.call(
            attempt,
            retry_on=(OSError, EOFError),
            token=f"{message.get('op')}:{self.address}",
        )

    # ------------------------------------------------------------------ #
    # Service surface
    # ------------------------------------------------------------------ #
    def ping(self) -> Dict[str, Any]:
        return self._roundtrip({"op": "ping"})

    def cancel(self, job_id: str) -> bool:
        return bool(self._roundtrip({"op": "cancel", "job": job_id}).get("ok"))

    @property
    def workloads(self) -> List[str]:
        if self._workloads is None:
            self._workloads = list(
                self._roundtrip({"op": "workloads"})["workloads"]
            )
        return list(self._workloads)

    def expand(self, what: "RequestsLike") -> List[SimulationRequest]:
        if isinstance(what, (ScenarioMatrix, SimulationRequest)):
            what = [what]
        items = list(what)
        needs_server_set = any(
            isinstance(item, ScenarioMatrix) and item._workloads_open()
            for item in items
        )
        defaults = self.workloads if needs_server_set else ()
        return expand_many(items, default_workloads=defaults)

    def submit(
        self,
        what: "RequestsLike",
        priority: int = 0,
        tags: Sequence[str] = (),
    ) -> RemoteJobHandle:
        requests = self.expand(what)
        # Submission is NOT idempotent (a retry could create a second job),
        # so only the dial retries; the submit exchange itself is one shot.
        sock, stream = self._connect()
        try:
            send_json(
                stream,
                {
                    "op": "submit",
                    "protocol": REMOTE_PROTOCOL_VERSION,
                    "requests": [request.as_dict() for request in requests],
                    "priority": priority,
                    "tags": list(tags),
                    # A reconnecting client's job must survive its dropped
                    # connections; it re-attaches by id.
                    "on_disconnect": "keep" if self.retry.reconnect else "cancel",
                },
            )
            ack = recv_json(stream)
        except BaseException:
            sock.close()
            raise
        if not ack or not ack.get("ok"):
            sock.close()
            raise RemoteJobError(
                (ack or {}).get("error", f"submit rejected by {self.address}")
            )
        return RemoteJobHandle(ack["job"], requests, sock, stream, client=self)

    def attach(self, job_id: str, after_seq: Optional[int] = None) -> RemoteJobHandle:
        """Re-observe an existing server-side job (the ``events`` op).

        History is replayed first, so attaching to a finished job still
        yields its complete event stream and final result.  ``after_seq``
        resumes mid-stream: events at or below it are skipped server-side
        (what :class:`RemoteJobHandle` reconnection uses).  Attaching is
        idempotent, so the whole exchange retries under the policy.
        """

        def attempt() -> RemoteJobHandle:
            sock, stream = self._dial()
            message: Dict[str, Any] = {"op": "events", "job": job_id}
            if after_seq is not None and after_seq >= 0:
                message["after_seq"] = after_seq
            try:
                send_json(stream, message)
                ack = recv_json(stream)
            except BaseException:
                sock.close()
                raise
            if not ack or not ack.get("ok"):
                sock.close()
                raise RemoteJobError(
                    (ack or {}).get("error", f"unknown job {job_id!r}")
                )
            return RemoteJobHandle(job_id, (), sock, stream, client=self)

        return self.retry.call(
            attempt, retry_on=(OSError, EOFError), token=f"attach:{job_id}"
        )

    def run(self, what: "RequestsLike") -> ResultSet:
        """The blocking convenience, exactly like ``SimulationService.run``."""
        return self.submit(what).result()


class RemoteBackend(ExecutionBackend):
    """Execute a service's pending points on a ``repro serve`` server.

    The in-process scheduler stays local (experiments, memo, disk cache);
    only the pending request batch crosses the wire, as one server-side
    job whose events feed ``listener`` (the CLI progress line) and whose
    rehydrated results are persisted into the local artifact memos and
    disk cache.
    """

    name = "remote"
    multiplexes_groups = True

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        listener: Optional[Callable[[JobEvent], None]] = None,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.client = RemoteServiceClient(address, timeout=timeout, retry=retry)
        self.listener = listener

    def execute(self, artifacts, requests, jobs):
        handle = self.client.submit(list(requests), tags=("remote-backend",))
        computed = 0
        for event in handle.events():
            if event.kind == "point-done":
                computed += 1
            if self.listener is not None:
                try:
                    self.listener(event)
                except Exception:  # noqa: BLE001 - progress must not kill the run
                    pass
        results = handle.result()
        for request, result in results:
            artifacts[request.workload.name].persist_simulation(request.key(), result)
        return computed


# --------------------------------------------------------------------------- #
# Socket sharding: RemoteShardBackend + its worker
# --------------------------------------------------------------------------- #
class _Worker:
    """One registered remote worker connection."""

    def __init__(self, worker_id: str, conn: socket.socket, stream) -> None:
        self.id = worker_id
        self.conn = conn
        self.stream = stream
        self.lock = threading.Lock()  # guards one write→read transaction
        self.alive = True

    def close(self) -> None:
        self.alive = False
        for closer in (self.stream.close, self.conn.close):
            try:
                closer()
            except OSError:
                pass


class RemoteShardBackend(ExecutionBackend):
    """:class:`ShardTask` frames over sockets to registered workers.

    The ROADMAP's distributed-sharding step: the task payloads and result
    frames are byte-for-byte the subprocess shard backend's; only the
    transport (TCP instead of worker pipes) and the worker lifecycle
    (registration + heartbeat instead of spawn) differ.  Worker loss
    follows the shared :class:`ShardWorkerError` recovery path — the dead
    worker joins the task's ``excluded`` set and the task is requeued for
    the surviving workers; a task with no eligible workers left fails the
    run.
    """

    name = "remote-shard"
    multiplexes_groups = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        worker_wait: float = 30.0,
        heartbeat_interval: Optional[float] = 10.0,
        ping_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.retry = retry if retry is not None else RetryPolicy()
        self.worker_wait = worker_wait
        # The explicit knob wins; otherwise the policy's heartbeat budget.
        self.ping_timeout = (
            ping_timeout if ping_timeout is not None else self.retry.heartbeat_timeout
        )
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(16)
        self.host, self.port = self._sock.getsockname()[:2]
        self._closed = threading.Event()
        self._lock = threading.Lock()
        self._registered = threading.Condition(self._lock)
        self._workers: Dict[str, _Worker] = {}
        self._worker_ids = iter(range(1, 1 << 30))
        _close_sockets_after_fork(
            self,
            lambda backend: [
                backend._sock,
                *[worker.conn for worker in backend._workers.values()],
            ],
        )
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-remote-shard-accept", daemon=True
        )
        self._accept_thread.start()
        self._heartbeat_thread: Optional[threading.Thread] = None
        if heartbeat_interval:
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                args=(heartbeat_interval,),
                name="repro-remote-shard-heartbeat",
                daemon=True,
            )
            self._heartbeat_thread.start()

    @property
    def address(self) -> str:
        """What workers pass to ``python -m repro.api.remote --connect``."""
        return f"{self.host}:{self.port}"

    def workers(self) -> List[str]:
        with self._lock:
            return sorted(self._workers)

    def close(self) -> None:
        self._closed.set()
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass
        with self._lock:
            workers = list(self._workers.values())
            self._workers.clear()
        for worker in workers:
            worker.close()

    # ------------------------------------------------------------------ #
    # Worker lifecycle
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        self._sock.settimeout(0.2)
        while not self._closed.is_set():
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                conn.settimeout(self.retry.connect_timeout)
                stream = conn.makefile("rwb")
                hello = recv_json(stream)
                if (
                    not hello
                    or hello.get("op") != "register-worker"
                    or hello.get("protocol") != REMOTE_PROTOCOL_VERSION
                ):
                    send_json(stream, {"ok": False, "error": "bad registration"})
                    conn.close()
                    continue
                worker_id = f"worker-{next(self._worker_ids)}"
                send_json(stream, {"ok": True, "worker_id": worker_id})
                conn.settimeout(None)
                with self._registered:
                    self._workers[worker_id] = _Worker(worker_id, conn, stream)
                    self._registered.notify_all()
            except (OSError, ValueError, EOFError):
                try:
                    conn.close()
                except OSError:
                    pass

    def wait_for_workers(self, count: int = 1, timeout: Optional[float] = None) -> int:
        """Block until ``count`` workers registered; returns the live count."""
        deadline = timeout if timeout is not None else self.worker_wait
        with self._registered:
            self._registered.wait_for(
                lambda: len(self._workers) >= count, timeout=deadline
            )
            return len(self._workers)

    def _drop_worker(self, worker: _Worker) -> None:
        with self._lock:
            self._workers.pop(worker.id, None)
        worker.close()

    def _heartbeat_loop(self, interval: float) -> None:
        while not self._closed.wait(interval):
            with self._lock:
                workers = list(self._workers.values())
            for worker in workers:
                # Busy workers (a driver holds the lock for its whole
                # write→read transaction) are proving liveness already.
                if not worker.lock.acquire(blocking=False):
                    continue
                try:
                    worker.conn.settimeout(self.ping_timeout)
                    write_frame(worker.stream, TAG_PING)
                    frame = read_frame(worker.stream)
                    worker.conn.settimeout(None)
                    if frame is None or frame[:1] != TAG_PONG:
                        raise EOFError("no pong")
                except (OSError, EOFError, ValueError):
                    self._drop_worker(worker)
                finally:
                    worker.lock.release()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def execute(self, artifacts, requests, jobs):
        pending = SubprocessShardBackend._pending_groups(artifacts, requests)
        if not pending:
            return 0
        if not self.wait_for_workers(1):
            first = next(iter(pending))
            raise ShardWorkerError(
                "none",
                first,
                tuple(pending[first]),
                f"ever registered (waited {self.worker_wait}s)",
            )
        outcomes = self._run_remote(artifacts, pending)
        computed = 0
        for workload, results in outcomes.items():
            artifact = artifacts[workload]
            for request, result in zip(pending[workload], results):
                artifact.persist_simulation(request.key(), result)
                computed += 1
        return computed

    def _run_remote(
        self,
        artifacts,
        pending: Dict[str, List[SimulationRequest]],
    ) -> Dict[str, List]:
        queue: List[str] = list(pending)
        excluded: Dict[str, Set[str]] = {name: set() for name in pending}
        outcomes: Dict[str, List] = {}
        errors: List[BaseException] = []
        lock = threading.Lock()
        work = threading.Condition(lock)
        inflight = [0]

        with self._lock:
            drivers = list(self._workers.values())
        # Only the snapshot has a driver thread this run; a worker that
        # registers mid-run joins the pool at the *next* execute().  The
        # eligibility checks below must agree, or a requeued task could be
        # kept "eligible" for a worker no thread will ever serve it with.
        driver_ids = {worker.id for worker in drivers}

        def live_ids() -> Set[str]:
            with self._lock:
                return driver_ids & set(self._workers)

        def next_task(worker: _Worker) -> Optional[str]:
            with work:
                while True:
                    if errors:
                        return None
                    for index, name in enumerate(queue):
                        if worker.id not in excluded[name]:
                            inflight[0] += 1
                            return queue.pop(index)
                    if not queue and inflight[0] == 0:
                        return None
                    if queue and all(
                        not (live_ids() - excluded[name]) for name in queue
                    ):
                        # retry-with-excluded exhausted every live worker.
                        name = queue[0]
                        errors.append(
                            ShardWorkerError(
                                "|".join(sorted(excluded[name])) or "none",
                                name,
                                tuple(pending[name]),
                                "pool exhausted (every live worker excluded)",
                            )
                        )
                        work.notify_all()
                        return None
                    work.wait(0.2)

        def task_done(name: str, results: List) -> None:
            with work:
                outcomes[name] = results
                inflight[0] -= 1
                work.notify_all()

        def task_failed(name: str, worker: _Worker, error: ShardWorkerError) -> None:
            with work:
                inflight[0] -= 1
                excluded[name].add(worker.id)
                if live_ids() - excluded[name]:
                    queue.append(name)
                else:
                    errors.append(error)
                work.notify_all()

        def drive(worker: _Worker) -> None:
            while True:
                name = next_task(worker)
                if name is None:
                    return
                task = SubprocessShardBackend._build_task(
                    artifacts[name], pending[name]
                )
                try:
                    with worker.lock:
                        write_frame(worker.stream, TAG_TASK + task.to_bytes())
                        frame = read_frame(worker.stream)
                        # Skip any pong a heartbeat raced into the channel.
                        while frame is not None and frame[:1] == TAG_PONG:
                            frame = read_frame(worker.stream)
                except (OSError, EOFError, ValueError) as exc:
                    frame = None
                    reason = f"died mid-frame ({exc})"
                else:
                    reason = "closed its connection mid-task"
                if frame is None:
                    self._drop_worker(worker)
                    task_failed(
                        name,
                        worker,
                        ShardWorkerError(
                            worker.id, name, tuple(pending[name]), reason
                        ),
                    )
                    return
                if frame[:1] != TAG_RESULT:
                    self._drop_worker(worker)
                    task_failed(
                        name,
                        worker,
                        ShardWorkerError(
                            worker.id,
                            name,
                            tuple(pending[name]),
                            f"answered with unexpected frame tag {frame[:1]!r}",
                        ),
                    )
                    return
                task_done(name, pickle.loads(frame[1:]))

        threads = [
            threading.Thread(target=drive, args=(worker,), daemon=True)
            for worker in drivers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        missing = [name for name in pending if name not in outcomes]
        if missing:  # pragma: no cover - guarded by the error paths above
            raise ShardWorkerError(
                "none", missing[0], tuple(pending[missing[0]]), "was never computed"
            )
        return outcomes


# --------------------------------------------------------------------------- #
# Worker entry point
# --------------------------------------------------------------------------- #
def worker_main(
    connect: Union[str, Tuple[str, int]],
    retry: Optional[RetryPolicy] = None,
) -> int:
    """Dial a :class:`RemoteShardBackend`, register, and serve tasks.

    The socket twin of the pipe worker loop in :mod:`repro.api.shard`:
    tagged frames in (``TAG_TASK`` :class:`ShardTask` payloads, pings),
    tagged frames out (pickled result lists, pongs), exit 0 on EOF.
    """
    from repro.testing.faults import activate_from_env

    activate_from_env()
    policy = retry if retry is not None else RetryPolicy()
    address = parse_address(connect)
    sock = policy.call(
        lambda: socket.create_connection(address, timeout=policy.connect_timeout),
        token=f"worker-dial:{address}",
    )
    sock.settimeout(None)
    stream = sock.makefile("rwb")
    send_json(
        stream,
        {
            "op": "register-worker",
            "protocol": REMOTE_PROTOCOL_VERSION,
            "pid": os.getpid(),
        },
    )
    ack = recv_json(stream)
    if not ack or not ack.get("ok"):
        return 1
    while True:
        try:
            frame = read_frame(stream)
        except (OSError, EOFError):
            return 0
        if frame is None:
            return 0
        tag, body = frame[:1], frame[1:]
        if tag == TAG_PING:
            write_frame(stream, TAG_PONG)
        elif tag == TAG_TASK:
            if _shard.FAULT_HOOK is not None:
                _shard.FAULT_HOOK("worker-task")
            results = run_task(ShardTask.from_bytes(body))
            write_frame(
                stream,
                TAG_RESULT + pickle.dumps(results, protocol=pickle.HIGHEST_PROTOCOL),
            )
        else:
            return 2


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.api.remote --connect host:port`` — a shard worker."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.api.remote",
        description="Register with a RemoteShardBackend and compute shard tasks.",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="the RemoteShardBackend worker address to register with",
    )
    args = parser.parse_args(argv)
    return worker_main(args.connect)


if __name__ == "__main__":  # pragma: no cover - exercised via worker processes
    sys.exit(main())
