""":class:`SimulationService` — the one front door for simulation requests.

The service wraps an :class:`~repro.pipeline.pipeline.ExperimentPipeline`
(preparation, artifact cache, worker budget) behind a declarative surface:
callers hand it :class:`~repro.api.request.SimulationRequest` iterables or
:class:`~repro.api.matrix.ScenarioMatrix` declarations, pick an
:class:`~repro.api.backends.ExecutionBackend`, and receive a typed
:class:`~repro.api.results.ResultSet`.  Experiments never touch points,
memos, or pools directly — they run against an :class:`ExperimentContext`
whose :meth:`~ExperimentContext.run` dispatches through the service (and is
a pure memo lookup for anything the CLI already prefetched).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Union

from repro.api.backends import ExecutionBackend, make_backend
from repro.api.jobs import JobHandle
from repro.api.matrix import ScenarioMatrix, expand_many
from repro.api.request import SimulationRequest, WorkloadRef
from repro.api.results import ResultSet

if TYPE_CHECKING:  # pragma: no cover - types only.  The pipeline and runner
    # modules import the experiments package, whose modules import repro.api
    # at module scope; runtime imports below are deferred to break the cycle.
    from repro.api.journal import JobJournal
    from repro.api.scheduler import Scheduler
    from repro.experiments.runner import WorkloadArtifacts
    from repro.pipeline.artifacts import ArtifactCache
    from repro.pipeline.pipeline import ExperimentPipeline

#: What :meth:`SimulationService.run` accepts.
RequestsLike = Union[
    ScenarioMatrix,
    SimulationRequest,
    Iterable[Union[ScenarioMatrix, SimulationRequest]],
]


class SimulationService:
    """Prepare on demand, execute through a backend, answer with a ResultSet."""

    def __init__(
        self,
        pipeline: Optional[ExperimentPipeline] = None,
        *,
        names: Optional[Sequence[str]] = None,
        cache: Optional[ArtifactCache] = None,
        jobs: int = 1,
        backend: Optional[Union[str, ExecutionBackend]] = None,
        journal: Optional["JobJournal"] = None,
    ) -> None:
        if pipeline is None:
            from repro.pipeline.pipeline import ExperimentPipeline

            pipeline = ExperimentPipeline(names=names, cache=cache, jobs=jobs)
        self.pipeline = pipeline
        self.backend = (
            backend if isinstance(backend, ExecutionBackend) else make_backend(backend)
        )
        #: Optional write-ahead journal the scheduler records jobs into.
        self.journal = journal
        #: Artifacts for non-registry workload refs, keyed by workload name.
        self._extra: Dict[str, WorkloadArtifacts] = {}
        self._scheduler: Optional[Scheduler] = None
        self._scheduler_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def workloads(self) -> List[str]:
        """The registry workload names requests expand over by default."""
        return list(self.pipeline.names)

    @property
    def jobs(self) -> int:
        return self.pipeline.jobs

    def stats(self) -> Dict[str, object]:
        from repro.engine import native
        from repro.engine.kernels import engine_tier

        report = dict(self.pipeline.stats())
        report["backend"] = self.backend.name
        report["engine_tier"] = engine_tier()
        report["native_compiler"] = native.compiler_available()
        # The structured artifact-cache counters (hits, misses, stores,
        # memo hits, quarantined corrupt entries), present even when the
        # disk cache is off so operators can tell "no cache" from "no
        # quarantines".
        cache = self.pipeline.cache
        report["artifact_cache"] = (
            cache.stats.as_dict() if cache is not None else None
        )
        # Read the field, not the lazy property: stats() must never be the
        # thing that spins a scheduler (and its dispatcher threads) up.
        if self._scheduler is not None:
            report["scheduler"] = self._scheduler.stats()
        return report

    # ------------------------------------------------------------------ #
    # Artifacts
    # ------------------------------------------------------------------ #
    def artifacts(self) -> List[WorkloadArtifacts]:
        """Every registry workload's artifacts, preparing the missing ones."""
        return self.pipeline.artifacts()

    def artifact(self, ref: Union[WorkloadRef, str]) -> WorkloadArtifacts:
        """One workload's artifacts (registry name or any :class:`WorkloadRef`)."""
        if isinstance(ref, str):
            if ref in self._extra:
                return self._extra[ref]
            return self.pipeline.artifact(ref)
        if ref.kind == "registry":
            return self.pipeline.artifact(ref.name)
        return self._artifacts_for_refs([ref])[ref.name]

    def _artifacts_for_refs(
        self, refs: Sequence[WorkloadRef]
    ) -> Dict[str, WorkloadArtifacts]:
        """Artifacts for a mixed registry/non-registry ref set, by name.

        Registry refs prepare through the pipeline (parallel across the
        missing ones); non-registry refs build from their kernel specs over
        the same fan-out and artifact cache, then stay memoized on the
        service.
        """
        from repro.pipeline.parallel import prepare_kernels_parallel

        registry = [ref.name for ref in refs if ref.kind == "registry"]
        other = [
            ref for ref in refs if ref.kind != "registry" and ref.name not in self._extra
        ]
        by_name: Dict[str, WorkloadArtifacts] = {}
        if registry:
            for artifact in self.pipeline.artifacts_for(registry):
                by_name[artifact.name] = artifact
        if other:
            prepared = prepare_kernels_parallel(
                [ref.kernel_spec() for ref in other],
                cache=self.pipeline.cache,
                jobs=self.pipeline.jobs,
            )
            for artifact in prepared:
                self._extra[artifact.name] = artifact
        for ref in refs:
            if ref.kind != "registry":
                by_name[ref.name] = self._extra[ref.name]
        return by_name

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def expand(self, what: RequestsLike) -> List[SimulationRequest]:
        """The set-ordered unique request list ``what`` denotes.

        Matrices with an open workload axis expand over the service's
        configured workload set; duplicate requests — within one matrix or
        across several — collapse to their first occurrence.
        """
        if isinstance(what, (ScenarioMatrix, SimulationRequest)):
            what = [what]
        return expand_many(what, default_workloads=self.pipeline.names)

    @property
    def scheduler(self) -> "Scheduler":
        """The service's job scheduler (created on first use).

        All execution — including the synchronous :meth:`run` — goes
        through it, so every caller shares one priority queue, one
        cross-job dedup table, and one event stream.
        """
        with self._scheduler_lock:
            if self._scheduler is None:
                from repro.api.scheduler import Scheduler

                self._scheduler = Scheduler(self, journal=self.journal)
            return self._scheduler

    def submit(
        self, what: RequestsLike, priority: int = 0, tags: Sequence[str] = ()
    ) -> JobHandle:
        """Submit ``what`` as a job; returns immediately with a handle.

        The handle streams typed :class:`~repro.api.jobs.JobEvent`\\ s
        (``handle.events()``) and answers with the job's
        :class:`ResultSet` (``handle.result()``); ``handle.cancel()``
        stops it.  Two jobs naming the same request share one execution.
        """
        return self.scheduler.submit(what, priority=priority, tags=tags)

    def run(self, what: RequestsLike) -> ResultSet:
        """Expand, prepare, execute through the backend, and answer.

        The synchronous convenience over :meth:`submit`:
        ``submit(what).result()``.  Already-memoized (or disk-cached)
        points cost a lookup; the rest are grouped per workload and
        dispatched to the configured backend.  The returned
        :class:`ResultSet` follows the expanded request order.
        """
        return self.submit(what).result()

    def close(self) -> None:
        """Shut the scheduler down (queued jobs are cancelled)."""
        with self._scheduler_lock:
            scheduler, self._scheduler = self._scheduler, None
        if scheduler is not None:
            scheduler.close()

    def __enter__(self) -> "SimulationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def context(self) -> "ExperimentContext":
        """The uniform context object experiments run against."""
        return ExperimentContext(self)


class ExperimentContext:
    """What an experiment's ``run(ctx)`` receives: one object, whole API.

    Wraps a service with accumulated results: every :meth:`run` call merges
    its answer into :attr:`results`, so an experiment (or the CLI's
    prefetch) can consult everything simulated so far without re-querying.
    """

    def __init__(self, service: SimulationService) -> None:
        self.service = service
        self.results = ResultSet()
        #: Default tag for jobs submitted through :meth:`run` — the CLI sets
        #: it to the running experiment's name so job events (and hence the
        #: progress line) say *which* experiment is simulating.
        self.tag: Optional[str] = None

    @property
    def workloads(self) -> List[str]:
        return self.service.workloads

    @property
    def jobs(self) -> int:
        return self.service.jobs

    def artifacts(self) -> List[WorkloadArtifacts]:
        return self.service.artifacts()

    def artifact(self, ref: Union[WorkloadRef, str]) -> WorkloadArtifacts:
        return self.service.artifact(ref)

    def run(
        self,
        what: RequestsLike,
        priority: int = 0,
        tags: Sequence[str] = (),
    ) -> ResultSet:
        """Dispatch through the service; memo hits are effectively free.

        Each call is one scheduler job, so its progress is observable as
        events (tagged with :attr:`tag` unless ``tags`` is given).
        """
        if not tags and self.tag:
            tags = (self.tag,)
        answer = self.service.submit(what, priority=priority, tags=tags).result()
        self.results = self.results.merged(answer)
        return answer


def build_service(
    workloads: Optional[str] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    jobs: int = 0,
    backend: Optional[Union[str, ExecutionBackend]] = None,
    journal: Optional["JobJournal"] = None,
) -> SimulationService:
    """Construct a service from CLI-style options (the CLI's front door)."""
    from repro.pipeline.pipeline import build_pipeline

    pipeline = build_pipeline(
        workloads=workloads, cache_dir=cache_dir, use_cache=use_cache, jobs=jobs
    )
    return SimulationService(pipeline, backend=backend, journal=journal)


def default_context(
    ctx: Optional[ExperimentContext] = None,
    names: Optional[Sequence[str]] = None,
    jobs: int = 1,
    backend: Optional[Union[str, ExecutionBackend]] = None,
) -> ExperimentContext:
    """``ctx`` itself, or a fresh uncached context over ``names``.

    The standalone path for ``run_<experiment>()`` calls and
    ``python -m repro.experiments.<module>`` invocations: no disk cache,
    serial-by-default preparation — exactly what the pre-service
    ``prepare_workloads(names)`` default did.
    """
    if ctx is not None:
        return ctx
    service = SimulationService(names=list(names) if names else None, jobs=jobs, backend=backend)
    return service.context()
