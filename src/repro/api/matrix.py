"""Declarative scenario cross-products that expand into request sets.

A :class:`ScenarioMatrix` names the axes of an evaluation — designs ×
configs × BTU-flush intervals × warm-up passes, optionally pinned to an
explicit workload set — and expands into the corresponding
:class:`~repro.api.request.SimulationRequest` list.  Axis overrides that a
plain cross-product cannot express (the interrupt study flushes *only* the
``cassandra`` design) compose via :meth:`ScenarioMatrix.extended`, and
expansion is set-ordered unique: however many experiments share a design,
each point appears once, which is what deduplicates the CLI's prefetch
union.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.api.request import SimulationRequest, WorkloadRef
from repro.uarch.config import GOLDEN_COVE_LIKE, CoreConfig


@dataclass(frozen=True)
class ScenarioMatrix:
    """A declarative cross-product of simulation axes.

    ``workloads=None`` (the default) leaves the workload axis open: the
    expanding caller — normally the
    :class:`~repro.api.service.SimulationService` — supplies its configured
    workload set.  A matrix with explicit :class:`WorkloadRef`\\ s (the
    Figure 8 synthetic mixes) expands over those instead.

    ``extend`` holds override sub-matrices whose expansions are appended
    (and deduplicated) after the main product — the escape hatch for axes
    that apply to a subset of designs only.
    """

    workloads: Optional[Tuple[WorkloadRef, ...]] = None
    designs: Tuple[str, ...] = ()
    configs: Tuple[CoreConfig, ...] = (GOLDEN_COVE_LIKE,)
    flush_intervals: Tuple[Optional[int], ...] = (None,)
    warmup_passes: Tuple[int, ...] = (1,)
    extend: Tuple["ScenarioMatrix", ...] = ()

    def __post_init__(self) -> None:
        # Tolerate lists/generators at construction; store hashable tuples.
        for name in ("workloads", "designs", "configs", "flush_intervals",
                     "warmup_passes", "extend"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        if self.workloads is not None:
            object.__setattr__(
                self,
                "workloads",
                tuple(
                    WorkloadRef.registry(ref) if isinstance(ref, str) else ref
                    for ref in self.workloads
                ),
            )

    def extended(self, *overrides: "ScenarioMatrix") -> "ScenarioMatrix":
        """This matrix plus override sub-matrices (appended on expansion)."""
        return replace(self, extend=self.extend + tuple(overrides))

    def expand(
        self, default_workloads: Sequence[Union[WorkloadRef, str]] = ()
    ) -> List[SimulationRequest]:
        """The matrix's unique request list, in deterministic axis order.

        The product iterates workload-major (workload, design, config,
        flush, warm-up) so per-workload batches stay contiguous; override
        matrices follow the main product.  Duplicates — within the product,
        against an override, or between overrides — are dropped while the
        first occurrence keeps its position (set-ordered unique).
        """
        refs = self.workloads
        if refs is None:
            refs = tuple(
                WorkloadRef.registry(ref) if isinstance(ref, str) else ref
                for ref in default_workloads
            )
        seen: Dict[SimulationRequest, None] = {}
        for ref in refs:
            for design in self.designs:
                for config in self.configs:
                    for flush in self.flush_intervals:
                        for passes in self.warmup_passes:
                            seen.setdefault(
                                SimulationRequest(
                                    workload=ref,
                                    design=design,
                                    config=config,
                                    btu_flush_interval=flush,
                                    warmup_passes=passes,
                                )
                            )
        for override in self.extend:
            for request in override.expand(default_workloads):
                seen.setdefault(request)
        return list(seen)

    def is_empty(self) -> bool:
        """True when expansion can never produce a request."""
        return not self.designs and all(sub.is_empty() for sub in self.extend)

    def summary(self) -> Dict[str, Any]:
        """A small JSON-able description (for ``--list --format json``)."""
        report: Dict[str, Any] = {
            "workloads": (
                "pipeline-default"
                if self.workloads is None
                else [ref.name for ref in self.workloads]
            ),
            "designs": list(self.designs),
            "configs": len(self.configs),
            "flush_intervals": list(self.flush_intervals),
            "warmup_passes": list(self.warmup_passes),
        }
        if self.extend:
            report["extend"] = [sub.summary() for sub in self.extend]
        if self._workloads_open():
            # One representative workload is enough to count unique points.
            report["requests_per_workload"] = len(self.expand([WorkloadRef.registry("_")]))
        else:
            # Fully pinned (this matrix and every extend): the count is exact.
            report["requests"] = len(self.expand())
        return report

    def _workloads_open(self) -> bool:
        """Whether any level of this matrix expands over default workloads.

        A pinned matrix with an open override still depends on the
        caller's workload set — counting its expansion over no defaults
        would silently undercount it.
        """
        return self.workloads is None or any(
            sub._workloads_open() for sub in self.extend
        )


#: The matrix of experiments that consume no simulations (Tables 1/2, the
#: trace-runtime study): expansion is always empty.
EMPTY_MATRIX = ScenarioMatrix()


def expand_many(
    matrices: Iterable[Union[ScenarioMatrix, SimulationRequest]],
    default_workloads: Sequence[Union[WorkloadRef, str]] = (),
) -> List[SimulationRequest]:
    """The set-ordered unique union of several matrices' (or bare requests')
    expansions — the CLI's prefetch union, deduplicated by construction."""
    seen: Dict[SimulationRequest, None] = {}
    for item in matrices:
        if isinstance(item, SimulationRequest):
            seen.setdefault(item)
            continue
        for request in item.expand(default_workloads):
            seen.setdefault(request)
    return list(seen)
