"""Pluggable execution backends for :class:`SimulationService`.

A backend's contract is narrow: given the prepared artifacts and a request
list, make sure every request's :class:`SimulationResult` ends up in its
artifact's in-memory memo, and report how many points were actually
computed (memoized points are free).  Three implementations ship:

* :class:`SerialBackend` — everything in the calling process, one grouped
  batch per workload (the reference semantics).
* :class:`ForkPoolBackend` — the pipeline's fork-based grouped fan-out:
  workers inherit prepared artifacts copy-on-write and receive the
  preserialized columnar trace.
* :class:`SubprocessShardBackend` — fresh worker *subprocesses* fed
  self-contained :class:`~repro.api.shard.ShardTask` payloads over pipes:
  nothing is inherited, everything crosses the wire, which makes it the
  in-machine rehearsal of the multi-host backend the ROADMAP names.

All three produce bit-identical results (``tests/api/test_backends.py``
asserts it); they differ only in where the batches run.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import threading
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

from repro.api.request import SimulationRequest
from repro.api.shard import ShardTask, ShardWorkerError, read_frame, write_frame

if TYPE_CHECKING:  # pragma: no cover - types only (import cycle guard: the
    # experiments package's modules import repro.api at module scope)
    from repro.experiments.runner import WorkloadArtifacts


class ExecutionBackend:
    """Where (and how) a service's pending simulation points execute."""

    #: CLI name (``--backend <name>``).
    name: str = "base"

    #: Whether one :meth:`execute` call parallelizes *across* per-workload
    #: groups internally.  The scheduler hands such backends every pending
    #: group in a single call (preserving their fan-out) and drives
    #: group-at-a-time rounds through the others (finer-grained progress
    #: events and cancellation boundaries at identical cost).
    multiplexes_groups: bool = False

    def execute(
        self,
        artifacts: Mapping[str, WorkloadArtifacts],
        requests: Sequence[SimulationRequest],
        jobs: int,
    ) -> int:
        """Ensure every request's result is memoized; return points computed."""
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """Grouped per-workload batches in the calling process."""

    name = "serial"

    def execute(self, artifacts, requests, jobs):
        from repro.pipeline.parallel import simulate_points

        return simulate_points(
            list(artifacts.values()), [request.point() for request in requests], jobs=1
        )


class ForkPoolBackend(ExecutionBackend):
    """The fork-based grouped fan-out of :mod:`repro.pipeline.parallel`.

    Falls back to the serial path (bit-identically) when ``jobs <= 1``,
    when only one workload group is pending, or when the platform lacks
    the ``fork`` start method.
    """

    name = "fork"
    multiplexes_groups = True

    def execute(self, artifacts, requests, jobs):
        from repro.pipeline.parallel import simulate_points

        return simulate_points(
            list(artifacts.values()),
            [request.point() for request in requests],
            jobs=max(jobs, 1),
        )


class SubprocessShardBackend(ExecutionBackend):
    """Self-contained per-workload shard tasks over worker-process pipes.

    The parent resolves memo/disk-cache hits, serializes one
    :class:`ShardTask` per pending workload group — columnar trace bytes,
    pickled trace bundle, JSON requests — and drives up to ``jobs``
    ``python -m repro.api.shard`` workers over stdin/stdout pipes.  Results
    come back pickled, are seeded into the artifact memos, and persisted to
    the disk cache (workers have no cache handle, by design: the wire
    payloads must be sufficient).

    A worker dying mid-task — EOF or a truncated length-prefixed frame —
    surfaces as a typed :class:`ShardWorkerError` naming the worker and the
    pending requests, and its task is requeued onto the surviving workers.
    Only a task that kills every worker it is offered to (or the loss of
    the last live worker) fails the run.  The remote socket backend reuses
    the same recovery semantics.
    """

    name = "shard"
    multiplexes_groups = True

    def execute(self, artifacts, requests, jobs):
        pending = self._pending_groups(artifacts, requests)
        if not pending:
            return 0
        outcomes = self._run_workers(artifacts, pending, jobs)
        computed = 0
        for workload, results in outcomes.items():
            artifact = artifacts[workload]
            for request, result in zip(pending[workload], results):
                artifact.persist_simulation(request.key(), result)
                computed += 1
        return computed

    # ------------------------------------------------------------------ #
    # Task construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _pending_groups(
        artifacts: Mapping[str, WorkloadArtifacts],
        requests: Sequence[SimulationRequest],
    ) -> Dict[str, List[SimulationRequest]]:
        """Per-workload request groups still missing after cache probes."""
        groups: Dict[str, List[SimulationRequest]] = {}
        seen = set()
        for request in requests:
            name = request.workload.name
            if name not in artifacts:
                raise KeyError(f"no prepared artifact for workload {name!r}")
            identity = (name, request.key())
            if identity in seen:
                continue
            seen.add(identity)
            if artifacts[name].cached_simulation(request.key()) is None:
                groups.setdefault(name, []).append(request)
        return groups

    @staticmethod
    def _build_task(
        artifact: WorkloadArtifacts, group: Sequence[SimulationRequest]
    ) -> ShardTask:
        return ShardTask(
            workload=artifact.name,
            program_name=artifact.kernel.program.name,
            request_payloads=tuple(request.to_json() for request in group),
            trace_bytes=artifact.lowered_trace().to_bytes(),
            bundle_bytes=pickle.dumps(artifact.bundle, protocol=pickle.HIGHEST_PROTOCOL),
        )

    # ------------------------------------------------------------------ #
    # Worker management
    # ------------------------------------------------------------------ #
    @staticmethod
    def _worker_command() -> List[str]:
        # Equivalent to ``python -m repro.api.shard`` but avoids runpy's
        # double-import warning (the package __init__ already imports shard).
        return [
            sys.executable,
            "-c",
            "import sys; from repro.api.shard import main; sys.exit(main())",
        ]

    @staticmethod
    def _worker_env() -> Dict[str, str]:
        """The parent's environment with ``repro``'s source tree importable."""
        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        parts = [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        env["PYTHONPATH"] = os.pathsep.join(parts)
        return env

    def _run_workers(
        self,
        artifacts: Mapping[str, "WorkloadArtifacts"],
        pending: Dict[str, List[SimulationRequest]],
        jobs: int,
    ) -> Dict[str, List["SimulationResult"]]:  # noqa: F821
        """Drive up to ``jobs`` worker processes off one shared task queue.

        Dispatch is dynamic — each worker pulls the next pending task as
        soon as it answers the previous one — so a skewed group (one
        workload carrying most of the points) cannot strand the other
        workers idle the way a static partition would.  Each task's wire
        payload is built when a worker pulls it, so peak parent memory is
        ~``jobs`` frames rather than the whole suite's.

        A worker dying mid-task raises :class:`ShardWorkerError` inside its
        driver thread; the task is requeued for the surviving workers
        (idle drivers wait while any task is still in flight, so a
        requeued task is always picked up).  The run fails only when a
        task has killed as many workers as the pool started with, or when
        the last live worker dies with work outstanding.
        """
        workers = max(1, min(jobs, len(pending)))
        queue: List[str] = list(pending)
        failures: Dict[str, int] = {}
        outcomes: Dict[str, List] = {}
        errors: List[BaseException] = []
        lock = threading.Lock()
        work = threading.Condition(lock)
        inflight = [0]
        alive = [workers]

        def next_name() -> Optional[str]:
            with work:
                while True:
                    if errors:
                        return None
                    if queue:
                        inflight[0] += 1
                        return queue.pop(0)
                    if inflight[0] == 0:
                        return None
                    # Another driver may yet die and requeue its task;
                    # stay available instead of exiting early.
                    work.wait()

        def task_done(name: str, results: List) -> None:
            with work:
                outcomes[name] = results
                inflight[0] -= 1
                work.notify_all()

        def task_failed(name: str, error: ShardWorkerError) -> None:
            with work:
                inflight[0] -= 1
                failures[name] = failures.get(name, 0) + 1
                if failures[name] >= workers:
                    # The task killed every worker the pool ever had:
                    # requeueing again can only repeat the carnage.
                    errors.append(error)
                else:
                    queue.append(name)
                work.notify_all()

        def drive(worker_id: str) -> None:
            process = subprocess.Popen(
                self._worker_command(),
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                env=self._worker_env(),
            )
            current: Optional[str] = None
            try:
                while True:
                    current = next_name()
                    if current is None:
                        break
                    task = self._build_task(artifacts[current], pending[current])
                    try:
                        write_frame(process.stdin, task.to_bytes())
                        payload = read_frame(process.stdout)
                    except (BrokenPipeError, EOFError, OSError) as exc:
                        raise ShardWorkerError(
                            worker_id,
                            current,
                            tuple(pending[current]),
                            f"died mid-frame ({exc})",
                        ) from exc
                    if payload is None:
                        raise ShardWorkerError(
                            worker_id,
                            current,
                            tuple(pending[current]),
                            f"exited mid-task (code {process.poll()})",
                        )
                    task_done(current, pickle.loads(payload))
                    current = None
                process.stdin.close()
                if process.wait() != 0:
                    raise RuntimeError(
                        f"shard worker {worker_id} exited with code {process.returncode}"
                    )
            except ShardWorkerError as exc:
                process.kill()
                process.wait()
                if current is not None:
                    task_failed(current, exc)
            except BaseException as exc:  # noqa: BLE001 - reraised in the parent
                process.kill()
                process.wait()
                with work:
                    if current is not None:
                        inflight[0] -= 1
                    errors.append(exc)
                    work.notify_all()
            finally:
                for stream in (process.stdin, process.stdout):
                    if stream and not stream.closed:
                        stream.close()
                with work:
                    alive[0] -= 1
                    if alive[0] == 0 and queue and not errors:
                        # The pool is gone with tasks still queued: surface
                        # the loss instead of returning a partial answer.
                        leftover = queue[0]
                        errors.append(
                            ShardWorkerError(
                                worker_id,
                                leftover,
                                tuple(pending[leftover]),
                                "was the last live worker",
                            )
                        )
                    work.notify_all()

        threads = [
            threading.Thread(target=drive, args=(f"pipe-{i + 1}",), daemon=True)
            for i in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return outcomes


#: CLI backend name → factory.
BACKENDS = {
    backend.name: backend
    for backend in (SerialBackend, ForkPoolBackend, SubprocessShardBackend)
}


def make_backend(
    name: Optional[str],
    connect: Optional[str] = None,
    listener: Optional[object] = None,
) -> ExecutionBackend:
    """Instantiate a backend by CLI name (default: the fork fan-out).

    ``remote`` — the networked tier — needs ``connect`` (a
    ``host:port`` naming a running ``repro serve`` instance) and accepts an
    optional ``listener`` forwarded the server's job events (the CLI's
    progress line).
    """
    if name is None:
        return ForkPoolBackend()
    if name == "remote":
        if not connect:
            raise KeyError(
                "the remote backend needs a server address (--connect host:port)"
            )
        from repro.api.remote import RemoteBackend

        return RemoteBackend(connect, listener=listener)
    try:
        return BACKENDS[name]()
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; available: {sorted(BACKENDS) + ['remote']}"
        ) from None
