"""Pluggable execution backends for :class:`SimulationService`.

A backend's contract is narrow: given the prepared artifacts and a request
list, make sure every request's :class:`SimulationResult` ends up in its
artifact's in-memory memo, and report how many points were actually
computed (memoized points are free).  Three implementations ship:

* :class:`SerialBackend` — everything in the calling process, one grouped
  batch per workload (the reference semantics).
* :class:`ForkPoolBackend` — the pipeline's fork-based grouped fan-out:
  workers inherit prepared artifacts copy-on-write and receive the
  preserialized columnar trace.
* :class:`SubprocessShardBackend` — fresh worker *subprocesses* fed
  self-contained :class:`~repro.api.shard.ShardTask` payloads over pipes:
  nothing is inherited, everything crosses the wire, which makes it the
  in-machine rehearsal of the multi-host backend the ROADMAP names.

All three produce bit-identical results (``tests/api/test_backends.py``
asserts it); they differ only in where the batches run.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import threading
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

from repro.api.request import SimulationRequest
from repro.api.shard import ShardTask, read_frame, write_frame

if TYPE_CHECKING:  # pragma: no cover - types only (import cycle guard: the
    # experiments package's modules import repro.api at module scope)
    from repro.experiments.runner import WorkloadArtifacts


class ExecutionBackend:
    """Where (and how) a service's pending simulation points execute."""

    #: CLI name (``--backend <name>``).
    name: str = "base"

    def execute(
        self,
        artifacts: Mapping[str, WorkloadArtifacts],
        requests: Sequence[SimulationRequest],
        jobs: int,
    ) -> int:
        """Ensure every request's result is memoized; return points computed."""
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """Grouped per-workload batches in the calling process."""

    name = "serial"

    def execute(self, artifacts, requests, jobs):
        from repro.pipeline.parallel import simulate_points

        return simulate_points(
            list(artifacts.values()), [request.point() for request in requests], jobs=1
        )


class ForkPoolBackend(ExecutionBackend):
    """The fork-based grouped fan-out of :mod:`repro.pipeline.parallel`.

    Falls back to the serial path (bit-identically) when ``jobs <= 1``,
    when only one workload group is pending, or when the platform lacks
    the ``fork`` start method.
    """

    name = "fork"

    def execute(self, artifacts, requests, jobs):
        from repro.pipeline.parallel import simulate_points

        return simulate_points(
            list(artifacts.values()),
            [request.point() for request in requests],
            jobs=max(jobs, 1),
        )


class SubprocessShardBackend(ExecutionBackend):
    """Self-contained per-workload shard tasks over worker-process pipes.

    The parent resolves memo/disk-cache hits, serializes one
    :class:`ShardTask` per pending workload group — columnar trace bytes,
    pickled trace bundle, JSON requests — and drives up to ``jobs``
    ``python -m repro.api.shard`` workers over stdin/stdout pipes.  Results
    come back pickled, are seeded into the artifact memos, and persisted to
    the disk cache (workers have no cache handle, by design: the wire
    payloads must be sufficient).
    """

    name = "shard"

    def execute(self, artifacts, requests, jobs):
        pending = self._pending_groups(artifacts, requests)
        if not pending:
            return 0
        outcomes = self._run_workers(artifacts, pending, jobs)
        computed = 0
        for workload, results in outcomes.items():
            artifact = artifacts[workload]
            for request, result in zip(pending[workload], results):
                artifact.persist_simulation(request.key(), result)
                computed += 1
        return computed

    # ------------------------------------------------------------------ #
    # Task construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _pending_groups(
        artifacts: Mapping[str, WorkloadArtifacts],
        requests: Sequence[SimulationRequest],
    ) -> Dict[str, List[SimulationRequest]]:
        """Per-workload request groups still missing after cache probes."""
        groups: Dict[str, List[SimulationRequest]] = {}
        seen = set()
        for request in requests:
            name = request.workload.name
            if name not in artifacts:
                raise KeyError(f"no prepared artifact for workload {name!r}")
            identity = (name, request.key())
            if identity in seen:
                continue
            seen.add(identity)
            if artifacts[name].cached_simulation(request.key()) is None:
                groups.setdefault(name, []).append(request)
        return groups

    @staticmethod
    def _build_task(
        artifact: WorkloadArtifacts, group: Sequence[SimulationRequest]
    ) -> ShardTask:
        return ShardTask(
            workload=artifact.name,
            program_name=artifact.kernel.program.name,
            request_payloads=tuple(request.to_json() for request in group),
            trace_bytes=artifact.lowered_trace().to_bytes(),
            bundle_bytes=pickle.dumps(artifact.bundle, protocol=pickle.HIGHEST_PROTOCOL),
        )

    # ------------------------------------------------------------------ #
    # Worker management
    # ------------------------------------------------------------------ #
    @staticmethod
    def _worker_command() -> List[str]:
        # Equivalent to ``python -m repro.api.shard`` but avoids runpy's
        # double-import warning (the package __init__ already imports shard).
        return [
            sys.executable,
            "-c",
            "import sys; from repro.api.shard import main; sys.exit(main())",
        ]

    @staticmethod
    def _worker_env() -> Dict[str, str]:
        """The parent's environment with ``repro``'s source tree importable."""
        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        parts = [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        env["PYTHONPATH"] = os.pathsep.join(parts)
        return env

    def _run_workers(
        self,
        artifacts: Mapping[str, "WorkloadArtifacts"],
        pending: Dict[str, List[SimulationRequest]],
        jobs: int,
    ) -> Dict[str, List["SimulationResult"]]:  # noqa: F821
        """Drive up to ``jobs`` worker processes off one shared task queue.

        Dispatch is dynamic — each worker pulls the next pending task as
        soon as it answers the previous one — so a skewed group (one
        workload carrying most of the points) cannot strand the other
        workers idle the way a static partition would.  Each task's wire
        payload is built when a worker pulls it, so peak parent memory is
        ~``jobs`` frames rather than the whole suite's.
        """
        workers = max(1, min(jobs, len(pending)))
        task_iter = iter(list(pending))
        outcomes: Dict[str, List] = {}
        errors: List[BaseException] = []
        lock = threading.Lock()

        def next_name() -> Optional[str]:
            with lock:
                return next(task_iter, None)

        def drive() -> None:
            process = subprocess.Popen(
                self._worker_command(),
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                env=self._worker_env(),
            )
            try:
                while True:
                    name = next_name()
                    if name is None:
                        break
                    task = self._build_task(artifacts[name], pending[name])
                    write_frame(process.stdin, task.to_bytes())
                    payload = read_frame(process.stdout)
                    if payload is None:
                        raise RuntimeError(
                            f"shard worker exited while computing {name!r} "
                            f"(exit code {process.poll()})"
                        )
                    results = pickle.loads(payload)
                    with lock:
                        outcomes[name] = results
                process.stdin.close()
                if process.wait() != 0:
                    raise RuntimeError(
                        f"shard worker exited with code {process.returncode}"
                    )
            except BaseException as exc:  # noqa: BLE001 - reraised in the parent
                process.kill()
                process.wait()
                with lock:
                    errors.append(exc)
            finally:
                for stream in (process.stdin, process.stdout):
                    if stream and not stream.closed:
                        stream.close()

        threads = [
            threading.Thread(target=drive, daemon=True) for _ in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return outcomes


#: CLI backend name → factory.
BACKENDS = {
    backend.name: backend
    for backend in (SerialBackend, ForkPoolBackend, SubprocessShardBackend)
}


def make_backend(name: Optional[str]) -> ExecutionBackend:
    """Instantiate a backend by CLI name (default: the fork fan-out)."""
    if name is None:
        return ForkPoolBackend()
    try:
        return BACKENDS[name]()
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; available: {sorted(BACKENDS)}"
        ) from None
