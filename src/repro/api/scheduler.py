"""The job scheduler: many concurrent jobs over one shared service.

:class:`Scheduler` turns the blocking :class:`~repro.api.service.SimulationService`
execution path into job-oriented execution: callers
:meth:`~Scheduler.submit` a request batch (anything ``service.run`` accepts)
with a ``priority`` and ``tags`` and get a
:class:`~repro.api.jobs.JobHandle` back immediately.  Dispatcher threads
drain a priority queue, preparing workloads and driving the service's
configured :class:`~repro.api.backends.ExecutionBackend`, and every step is
published as a typed :class:`~repro.api.jobs.JobEvent` stream.

Guarantees:

* **Shared memo/disk cache** — jobs run over the service's one pipeline, so
  anything a previous job computed is a ``cache-hit`` for the next.
* **Cross-job point dedup** — a point *currently executing* for one job is
  never executed again for another: the second job waits for the first's
  execution and records a ``cache-hit`` (two jobs naming the same
  :class:`~repro.api.request.SimulationRequest` share one execution).
* **Priority ordering** — higher ``priority`` jobs are popped first; ties
  run in submission order.
* **Cancellation** — :meth:`JobHandle.cancel` stops a queued job before it
  starts and a running job at its next workload-group boundary; points
  that already finished stay memoized and disk-cached (the cache is always
  consistent), and are available via :meth:`JobHandle.partial`.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.api.jobs import JobEvent, JobHandle
from repro.api.request import SimulationRequest
from repro.api.results import ResultSet

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.api.journal import JobJournal
    from repro.api.service import RequestsLike, SimulationService


class Scheduler:
    """Multiplex prioritized jobs over one service's backend and cache.

    With a :class:`~repro.api.journal.JobJournal` attached, every
    submission and durable event is written ahead to the journal, and the
    event-``seq`` / job-id counters restart *above* the journal's recovered
    maxima, so ids and seqs stay monotonic across process restarts.
    """

    def __init__(
        self,
        service: "SimulationService",
        workers: int = 1,
        paused: bool = False,
        journal: Optional["JobJournal"] = None,
    ) -> None:
        self.service = service
        self.journal = journal
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._heap: List[Tuple[int, int, JobHandle]] = []
        self._order = itertools.count()
        self._seq = itertools.count(journal.next_seq if journal else 0)
        self._job_ids = itertools.count(journal.next_job_number if journal else 1)
        self._jobs: Dict[str, JobHandle] = {}
        #: (workload name, SimulationKey) → Event set when its execution ends.
        self._inflight: Dict[Tuple[str, tuple], threading.Event] = {}
        self._listeners: List[Callable[[JobEvent], None]] = []
        self._paused = paused
        self._closed = False
        self._prepare_lock = threading.Lock()
        self._threads = [
            threading.Thread(
                target=self._dispatch, name=f"repro-scheduler-{i}", daemon=True
            )
            for i in range(max(1, workers))
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------ #
    # Public surface
    # ------------------------------------------------------------------ #
    def submit(
        self,
        what: "RequestsLike",
        priority: int = 0,
        tags: Sequence[str] = (),
        job_id: Optional[str] = None,
    ) -> JobHandle:
        """Queue a job for ``what`` (expanded eagerly, in the caller).

        Invalid input (unknown workloads/designs surface at expansion)
        raises here, synchronously; everything later is reported through
        the handle.  An empty expansion completes immediately.

        ``job_id`` overrides the allocated id — used by journal resume so
        an interrupted job keeps its identity (clients re-attach by id)
        across restarts.
        """
        requests = self.service.expand(what)
        handle = JobHandle(
            job_id if job_id is not None else f"job-{next(self._job_ids)}",
            requests,
            priority=priority,
            tags=tuple(tags),
        )
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            self._jobs[handle.job_id] = handle
        if self.journal is not None:
            # Write-ahead: the submission is durable before any event or
            # execution, so a crash from here on leaves a resumable job.
            self.journal.job_submitted(handle)
        self._emit(
            handle,
            "queued",
            payload={
                "points": len(requests),
                "priority": priority,
                "tags": list(handle.tags),
            },
        )
        if not requests:
            handle._finish(ResultSet())
            self._emit(handle, "done", payload={"points": 0, "computed": 0, "cache_hits": 0})
            return handle
        with self._work:
            if self._closed:
                # close() won the race after the check above: a push now
                # would land on a dead heap and strand result() forever.
                closed_during_submit = True
            else:
                closed_during_submit = False
                heapq.heappush(self._heap, (-priority, next(self._order), handle))
                self._work.notify()
        if closed_during_submit:
            handle._mark_cancelled(ResultSet())
            self._emit(handle, "cancelled", payload={"completed": 0})
        return handle

    def get_job(self, job_id: str) -> Optional[JobHandle]:
        """A previously submitted job's handle (``None`` when unknown)."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[JobHandle]:
        """Every job this scheduler has seen (the drain path iterates it)."""
        with self._lock:
            return list(self._jobs.values())

    def stats(self) -> Dict[str, object]:
        """A point-in-time operational snapshot (the ``/healthz`` payload).

        Job counts are by handle state, so ``jobs_queued`` includes jobs
        waiting in the heap and ``jobs_running`` those a dispatcher holds;
        ``inflight_claims`` is the cross-job dedup table's current size.
        """
        with self._lock:
            handles = list(self._jobs.values())
            queue_depth = len(self._heap)
            inflight = len(self._inflight)
            paused = self._paused
        counts = {"queued": 0, "running": 0, "done": 0, "failed": 0, "cancelled": 0}
        for handle in handles:
            counts[handle.state] = counts.get(handle.state, 0) + 1
        return {
            "jobs_total": len(handles),
            "jobs_queued": counts["queued"],
            "jobs_running": counts["running"],
            "jobs_done": counts["done"],
            "jobs_failed": counts["failed"],
            "jobs_cancelled": counts["cancelled"],
            "queue_depth": queue_depth,
            "inflight_claims": inflight,
            "workers": len(self._threads),
            "paused": paused,
            "journal_path": self.journal.path if self.journal is not None else None,
        }

    def add_listener(self, listener: Callable[[JobEvent], None]) -> None:
        """Observe every event of every job (the CLI progress line hook)."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[JobEvent], None]) -> None:
        self._listeners.remove(listener)

    def pause(self) -> None:
        """Stop starting new jobs (running jobs finish; submits still queue)."""
        with self._work:
            self._paused = True

    def resume(self) -> None:
        with self._work:
            self._paused = False
            self._work.notify_all()

    def close(self, wait: bool = True) -> None:
        """Cancel queued jobs, stop the dispatchers, optionally join them."""
        with self._work:
            if self._closed:
                return
            self._closed = True
            leftover = [job for _, _, job in self._heap]
            self._heap.clear()
            self._work.notify_all()
        for job in leftover:
            job._mark_cancelled(ResultSet())
            self._emit(job, "cancelled", payload={"completed": 0})
        if wait:
            for thread in self._threads:
                if thread is not threading.current_thread():
                    thread.join(timeout=5.0)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _emit(
        self,
        handle: JobHandle,
        kind: str,
        request: Optional[SimulationRequest] = None,
        payload: Optional[dict] = None,
    ) -> JobEvent:
        event = JobEvent(
            kind=kind,
            job_id=handle.job_id,
            seq=next(self._seq),
            request=request,
            payload=payload,
        )
        if self.journal is not None:
            # Write-ahead: durable before any subscriber observes it.
            self.journal.job_event(event)
        handle._emit(event, self._listeners)
        return event

    def _point_payload(self, result) -> dict:
        """The payload of a point-done/cache-hit event.

        The result content digest is only computed when a journal needs it
        for per-point completion records; the common in-memory path stays
        digest-free.
        """
        payload = {"cycles": result.cycles}
        if self.journal is not None:
            from repro.api.journal import result_digest

            payload["digest"] = result_digest(result)
        return payload

    def _dispatch(self) -> None:
        while True:
            with self._work:
                while not self._closed and (self._paused or not self._heap):
                    self._work.wait()
                if self._closed:
                    return
                _, _, handle = heapq.heappop(self._heap)
            if handle.cancel_requested:
                handle._mark_cancelled(ResultSet())
                self._emit(handle, "cancelled", payload={"completed": 0})
                continue
            handle.state = "running"
            try:
                self._run_job(handle)
            except BaseException as exc:  # noqa: BLE001 - reported via the handle
                handle._fail(exc)
                self._emit(handle, "failed", payload={"error": str(exc)})

    def _run_job(self, handle: JobHandle) -> None:
        service = self.service
        requests = handle.requests
        refs = {}
        for request in requests:
            refs.setdefault(request.workload.name, request.workload)
        with self._prepare_lock:
            artifacts = service._artifacts_for_refs(list(refs.values()))
        self._emit(handle, "prepared", payload={"workloads": sorted(refs)})

        resolved: Dict[SimulationRequest, object] = {}
        computed = cache_hits = 0
        groups: Dict[str, List[SimulationRequest]] = {}
        for request in requests:
            artifact = artifacts[request.workload.name]
            cached = artifact.cached_simulation(request.key())
            if cached is not None:
                resolved[request] = cached
                cache_hits += 1
                self._emit(
                    handle, "cache-hit", request, payload=self._point_payload(cached)
                )
            else:
                groups.setdefault(request.workload.name, []).append(request)

        # Claim pending points: a point another job is executing right now
        # is "theirs" — we wait for that execution instead of repeating it.
        owned_groups: List[Tuple[str, List[SimulationRequest]]] = []
        theirs: List[Tuple[SimulationRequest, threading.Event]] = []
        claims: List[Tuple[str, tuple]] = []
        with self._lock:
            for name, group in groups.items():
                owned: List[SimulationRequest] = []
                for request in group:
                    key = (name, request.key())
                    other = self._inflight.get(key)
                    if other is not None:
                        theirs.append((request, other))
                    else:
                        self._inflight[key] = threading.Event()
                        claims.append(key)
                        owned.append(request)
                if owned:
                    owned_groups.append((name, owned))

        # Backends that multiplex per-workload groups internally (the fork
        # fan-out, the shard worker pool, the remote tiers) get every group
        # in one call so cross-workload parallelism is preserved; the serial
        # backend runs group-sized rounds — identical work, but cancellation
        # and point-done events land at every group boundary.
        if getattr(service.backend, "multiplexes_groups", False) and len(owned_groups) > 1:
            rounds = [owned_groups]
        else:
            rounds = [[group] for group in owned_groups]

        cancelled = False
        try:
            for round_groups in rounds:
                if handle.cancel_requested:
                    cancelled = True
                    break
                round_artifacts = {name: artifacts[name] for name, _ in round_groups}
                round_requests = [
                    request for _, group in round_groups for request in group
                ]
                for request in round_requests:
                    self._emit(handle, "point-started", request)
                computed += service.backend.execute(
                    round_artifacts, round_requests, jobs=service.jobs
                )
                for request in round_requests:
                    artifact = round_artifacts[request.workload.name]
                    result = artifact.cached_simulation(request.key())
                    if result is None:  # pragma: no cover - backend contract breach
                        raise RuntimeError(
                            f"backend {service.backend.name!r} failed to produce "
                            f"a result for {request!r}"
                        )
                    resolved[request] = result
                    self._emit(
                        handle, "point-done", request, payload=self._point_payload(result)
                    )
                self._release(
                    (request.workload.name, request.key()) for request in round_requests
                )
        finally:
            self._release(claims)  # idempotent: released keys are skipped
            service.pipeline.points_simulated += computed

        if not cancelled:
            for request, event in theirs:
                if handle.cancel_requested:
                    cancelled = True
                    break
                event.wait()
                artifact = artifacts[request.workload.name]
                result = artifact.cached_simulation(request.key())
                if result is None:
                    # The owning job was cancelled or failed before this
                    # point completed: compute it ourselves.
                    self._emit(handle, "point-started", request)
                    computed_here = service.backend.execute(
                        {request.workload.name: artifact}, [request], jobs=service.jobs
                    )
                    service.pipeline.points_simulated += computed_here
                    computed += computed_here
                    result = artifact.cached_simulation(request.key())
                    if result is None:  # pragma: no cover - contract breach
                        raise RuntimeError(
                            f"backend {service.backend.name!r} failed to produce "
                            f"a result for {request!r}"
                        )
                    resolved[request] = result
                    self._emit(
                        handle, "point-done", request, payload=self._point_payload(result)
                    )
                else:
                    resolved[request] = result
                    cache_hits += 1
                    self._emit(
                        handle, "cache-hit", request, payload=self._point_payload(result)
                    )

        if cancelled or handle.cancel_requested:
            partial = ResultSet(
                [(request, resolved[request]) for request in requests if request in resolved]
            )
            handle._mark_cancelled(partial)
            self._emit(handle, "cancelled", payload={"completed": len(partial)})
            return

        entries = []
        for request in requests:
            result = resolved.get(request)
            if result is None:
                result = artifacts[request.workload.name].cached_simulation(request.key())
            if result is None:  # pragma: no cover - would be a logic error above
                raise RuntimeError(f"job {handle.job_id} lost the result for {request!r}")
            entries.append((request, result))
        result_set = ResultSet(entries)
        handle._finish(result_set)
        self._emit(
            handle,
            "done",
            payload={
                "points": len(requests),
                "computed": computed,
                "cache_hits": cache_hits,
            },
        )

    def _release(self, keys) -> None:
        with self._lock:
            for key in keys:
                event = self._inflight.pop(key, None)
                if event is not None:
                    event.set()
