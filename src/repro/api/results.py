"""The typed result container the experiments aggregate over.

A :class:`ResultSet` pairs each :class:`~repro.api.request.SimulationRequest`
with its :class:`~repro.uarch.core.SimulationResult`, in request order, and
offers the aggregation vocabulary the paper's tables and figures are written
in: filter (:meth:`where`), group (:meth:`group_by`), normalized execution
time against a baseline design (:meth:`normalized_time`), geometric means
(:meth:`geomean_cycles`, :meth:`geomean_normalized_time`), and plain-data
export (:meth:`export_rows`, :meth:`to_json`, :meth:`export_csv`).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.api.request import SimulationRequest
from repro.uarch.config import CoreConfig
from repro.uarch.core import SimulationResult

#: Sentinel distinguishing "filter not given" from "filter on None" (the
#: BTU-flush axis legitimately filters on None = flushing disabled).
_UNSET: Any = object()

#: Bump when the full-fidelity wire layout changes; :meth:`ResultSet.from_wire`
#: rejects other versions.
WIRE_FORMAT_VERSION = 1

Entry = Tuple[SimulationRequest, SimulationResult]

#: The column order of :meth:`ResultSet.export_rows` rows — and hence of
#: every CSV export (:meth:`ResultSet.export_csv` and the warehouse's
#: ``export --format csv`` share :func:`rows_to_csv`).
EXPORT_COLUMNS = (
    "workload",
    "design",
    "config",
    "btu_flush_interval",
    "warmup_passes",
    "cycles",
    "instructions",
    "ipc",
)


def rows_to_csv(rows: Sequence[Dict[str, Any]]) -> str:
    """Render export rows as CSV text (header always present).

    ``None`` cells (a disabled BTU-flush axis, a lossy backfill's missing
    instructions) render as empty fields; everything else uses ``str``,
    so the output round-trips the JSON export's values exactly.
    """
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(EXPORT_COLUMNS)
    for row in rows:
        writer.writerow(
            "" if row.get(column) is None else row.get(column)
            for column in EXPORT_COLUMNS
        )
    return out.getvalue()


#: Axes :meth:`ResultSet.group_by` understands, mapped to key extractors.
_AXES = {
    "workload": lambda request: request.workload.name,
    "design": lambda request: request.design,
    "config": lambda request: request.config,
    "btu_flush_interval": lambda request: request.btu_flush_interval,
    "warmup_passes": lambda request: request.warmup_passes,
}


class ResultSet:
    """An ordered, queryable set of (request, result) pairs."""

    def __init__(self, entries: Sequence[Entry] = ()) -> None:
        self._entries: List[Entry] = list(entries)
        self._by_request: Dict[SimulationRequest, SimulationResult] = {
            request: result for request, result in self._entries
        }

    # ------------------------------------------------------------------ #
    # Container basics
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self) -> Iterator[Entry]:
        return iter(self._entries)

    @property
    def requests(self) -> List[SimulationRequest]:
        return [request for request, _ in self._entries]

    @property
    def results(self) -> List[SimulationResult]:
        return [result for _, result in self._entries]

    def get(self, request: SimulationRequest) -> SimulationResult:
        """The result of an exact request (KeyError when absent)."""
        try:
            return self._by_request[request]
        except KeyError:
            raise KeyError(f"no result for request {request!r}") from None

    def merged(self, other: "ResultSet") -> "ResultSet":
        """This set plus ``other``'s entries (first occurrence wins)."""
        merged = ResultSet(self._entries)
        for request, result in other:
            if request not in merged._by_request:
                merged._entries.append((request, result))
                merged._by_request[request] = result
        return merged

    # ------------------------------------------------------------------ #
    # Query
    # ------------------------------------------------------------------ #
    def where(
        self,
        workload: Any = _UNSET,
        design: Any = _UNSET,
        config: Any = _UNSET,
        btu_flush_interval: Any = _UNSET,
        warmup_passes: Any = _UNSET,
    ) -> "ResultSet":
        """The entries matching every given axis value.

        ``workload`` matches the workload name; ``config`` a
        :class:`CoreConfig` (compared by identity tuple, so a re-parsed
        equal config matches).
        """
        config_id = config.identity() if isinstance(config, CoreConfig) else config

        def matches(request: SimulationRequest) -> bool:
            if workload is not _UNSET and request.workload.name != workload:
                return False
            if design is not _UNSET and request.design != design:
                return False
            if config_id is not _UNSET and request.config.identity() != config_id:
                return False
            if (
                btu_flush_interval is not _UNSET
                and request.btu_flush_interval != btu_flush_interval
            ):
                return False
            if warmup_passes is not _UNSET and request.warmup_passes != warmup_passes:
                return False
            return True

        return ResultSet([entry for entry in self._entries if matches(entry[0])])

    def one(self, **filters: Any) -> SimulationResult:
        """The single result matching ``filters`` (error on 0 or >1)."""
        matched = self.where(**filters) if filters else self
        if len(matched) != 1:
            raise LookupError(
                f"expected exactly one result for {filters!r}, got {len(matched)}"
            )
        return matched._entries[0][1]

    def cycles(self, **filters: Any) -> int:
        """The cycle count of the single matching result."""
        return self.one(**filters).cycles

    def group_by(self, axis: str) -> Dict[Any, "ResultSet"]:
        """Sub-sets per distinct value of ``axis``, in first-seen order."""
        try:
            key_of = _AXES[axis]
        except KeyError:
            raise KeyError(f"unknown axis {axis!r}; known: {sorted(_AXES)}") from None
        groups: Dict[Any, ResultSet] = {}
        for request, result in self._entries:
            groups.setdefault(key_of(request), ResultSet())._append(request, result)
        return groups

    def _append(self, request: SimulationRequest, result: SimulationResult) -> None:
        self._entries.append((request, result))
        self._by_request[request] = result

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def normalized_time(
        self, design: str, baseline: str = "unsafe-baseline", **filters: Any
    ) -> float:
        """``design``'s cycles over ``baseline``'s, within the filtered set."""
        scoped = self.where(**filters) if filters else self
        return scoped.cycles(design=design) / scoped.cycles(design=baseline)

    def geomean_cycles(self, **filters: Any) -> float:
        """Geometric mean of cycle counts across the (filtered) entries."""
        from repro.experiments.runner import geometric_mean

        scoped = self.where(**filters) if filters else self
        return geometric_mean(float(result.cycles) for result in scoped.results)

    def geomean_normalized_time(
        self, design: str, baseline: str = "unsafe-baseline", **filters: Any
    ) -> float:
        """Geometric mean of per-workload normalized times (Figure 7's row)."""
        from repro.experiments.runner import geometric_mean

        scoped = self.where(**filters) if filters else self
        return geometric_mean(
            group.normalized_time(design, baseline)
            for group in scoped.group_by("workload").values()
        )

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def export_rows(self) -> List[Dict[str, Any]]:
        """Plain-data rows, one per entry (JSON-serializable).

        Rows are sorted by :meth:`SimulationRequest.sort_key` — a stable
        total order over the request axes — not by insertion order, so the
        same result set exports identically no matter which backend, job
        interleaving, or cache state produced it.
        """
        ordered = sorted(self._entries, key=lambda entry: entry[0].sort_key())
        return [
            {
                "workload": request.workload.name,
                "design": request.design,
                "config": request.config.digest(),
                "btu_flush_interval": request.btu_flush_interval,
                "warmup_passes": request.warmup_passes,
                "cycles": result.cycles,
                "instructions": result.stats.instructions,
                "ipc": round(result.ipc, 4),
            }
            for request, result in ordered
        ]

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.export_rows(), indent=indent)

    def export_csv(self) -> str:
        """The :meth:`export_rows` table as CSV — same stable sort order."""
        return rows_to_csv(self.export_rows())

    # ------------------------------------------------------------------ #
    # Wire round-trip
    # ------------------------------------------------------------------ #
    def to_wire(self) -> str:
        """Full-fidelity JSON: every request *and* result field, in order.

        Unlike :meth:`to_json` (sorted human-readable rows), this is the
        lossless server→client payload: :meth:`from_wire` rebuilds an
        equivalent :class:`ResultSet` — same entry order, same stats — on
        the other side of a socket.
        """
        return json.dumps(
            {
                "version": WIRE_FORMAT_VERSION,
                "entries": [
                    {"request": request.as_dict(), "result": result.as_dict()}
                    for request, result in self._entries
                ],
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_wire(cls, text: str) -> "ResultSet":
        """Rehydrate a :meth:`to_wire` payload (a remote service's answer)."""
        payload = json.loads(text)
        version = payload.get("version")
        if version != WIRE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported ResultSet wire format {version!r} "
                f"(this build speaks {WIRE_FORMAT_VERSION})"
            )
        return cls(
            [
                (
                    SimulationRequest.from_dict(entry["request"]),
                    SimulationResult.from_dict(entry["result"]),
                )
                for entry in payload["entries"]
            ]
        )
