"""``repro gateway admin``: tenant/key management over a gateway store.

Operates on the SQLite store directly (no running gateway needed — and
safe alongside one: SQLite serializes the writes), so key provisioning
works before the first ``repro gateway`` ever starts.  The plaintext API
key is printed exactly once, by ``create-key``; only its hash is stored.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

from repro.api.gateway.store import GatewayStore, Tenant


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro gateway admin",
        description="Manage gateway tenants, API keys, and quotas.",
    )
    parser.add_argument(
        "--state-dir",
        required=True,
        help="The gateway's state directory (holds gateway.sqlite3).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def quota_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--max-concurrent-jobs",
            type=int,
            default=None,
            help="Live (queued+running) job cap; omit for the gateway default.",
        )
        p.add_argument(
            "--max-queued-points",
            type=int,
            default=None,
            help="Points across live jobs; omit for the gateway default.",
        )
        p.add_argument(
            "--points-per-day",
            type=int,
            default=None,
            help="Points per rolling usage window; omit for the gateway default.",
        )

    create_tenant = sub.add_parser("create-tenant", help="Create a tenant.")
    create_tenant.add_argument("name")
    quota_flags(create_tenant)

    set_quota = sub.add_parser(
        "set-quota", help="Replace a tenant's quota overrides."
    )
    set_quota.add_argument("tenant", help="Tenant name or id.")
    quota_flags(set_quota)

    create_key = sub.add_parser(
        "create-key", help="Issue an API key (plaintext printed once)."
    )
    create_key.add_argument("tenant", help="Tenant name or id.")
    create_key.add_argument("--label", default="", help="Free-form key label.")

    revoke_key = sub.add_parser("revoke-key", help="Revoke a key by key id.")
    revoke_key.add_argument("key_id")

    list_keys = sub.add_parser("list-keys", help="List issued keys.")
    list_keys.add_argument("--tenant", default=None, help="Filter by tenant name/id.")
    list_keys.add_argument(
        "--format", choices=("table", "json"), default="table", dest="fmt"
    )

    list_tenants = sub.add_parser("list-tenants", help="List tenants.")
    list_tenants.add_argument(
        "--format", choices=("table", "json"), default="table", dest="fmt"
    )
    return parser


def _resolve_tenant(store: GatewayStore, ref: str) -> Optional[Tenant]:
    tenant = store.tenant_by_name(ref)
    if tenant is None:
        tenant = store.get_tenant(ref)
    return tenant


def admin_main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    with GatewayStore(args.state_dir) as store:
        if args.command == "create-tenant":
            try:
                tenant = store.create_tenant(
                    args.name,
                    max_concurrent_jobs=args.max_concurrent_jobs,
                    max_queued_points=args.max_queued_points,
                    points_per_day=args.points_per_day,
                )
            except ValueError as exc:
                print(f"repro gateway admin: {exc}")
                return 2
            print(f"created tenant {tenant.name} ({tenant.tenant_id})")
            return 0

        if args.command == "set-quota":
            tenant = _resolve_tenant(store, args.tenant)
            if tenant is None:
                print(f"repro gateway admin: unknown tenant {args.tenant!r}")
                return 2
            tenant = store.set_quotas(
                tenant.tenant_id,
                max_concurrent_jobs=args.max_concurrent_jobs,
                max_queued_points=args.max_queued_points,
                points_per_day=args.points_per_day,
            )
            print(
                f"quotas for {tenant.name}: "
                f"concurrent-jobs={tenant.max_concurrent_jobs} "
                f"queued-points={tenant.max_queued_points} "
                f"points-per-day={tenant.points_per_day}"
            )
            return 0

        if args.command == "create-key":
            tenant = _resolve_tenant(store, args.tenant)
            if tenant is None:
                print(f"repro gateway admin: unknown tenant {args.tenant!r}")
                return 2
            plaintext, key = store.issue_key(tenant.tenant_id, label=args.label)
            print(f"key-id: {key.key_id}")
            print(f"api-key: {plaintext}")
            print("(store the api-key now; it is not retrievable later)")
            return 0

        if args.command == "revoke-key":
            if store.revoke_key(args.key_id):
                print(f"revoked {args.key_id}")
                return 0
            print(f"repro gateway admin: no active key {args.key_id!r}")
            return 2

        if args.command == "list-keys":
            tenant_id = None
            if args.tenant is not None:
                tenant = _resolve_tenant(store, args.tenant)
                if tenant is None:
                    print(f"repro gateway admin: unknown tenant {args.tenant!r}")
                    return 2
                tenant_id = tenant.tenant_id
            keys = store.list_keys(tenant_id)
            if args.fmt == "json":
                print(json.dumps([key.as_dict() for key in keys], sort_keys=True))
            else:
                for key in keys:
                    status = "active" if key.active else "revoked"
                    label = f"  {key.label}" if key.label else ""
                    print(f"{key.key_id}  {key.tenant_id}  {status}{label}")
            return 0

        assert args.command == "list-tenants"
        tenants = store.list_tenants()
        if args.fmt == "json":
            print(json.dumps([t.as_dict() for t in tenants], sort_keys=True))
        else:
            for tenant in tenants:
                print(
                    f"{tenant.tenant_id}  {tenant.name}  "
                    f"concurrent-jobs={tenant.max_concurrent_jobs} "
                    f"queued-points={tenant.max_queued_points} "
                    f"points-per-day={tenant.points_per_day}"
                )
        return 0
