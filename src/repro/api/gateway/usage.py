"""Usage metering: every tenant job's cost, measured off the event stream.

:class:`UsageService` is a scheduler listener.  It watches the same typed
:class:`~repro.api.jobs.JobEvent` stream clients see and, for every job
tagged ``tenant:<id>``:

* on ``queued`` — writes the job-ownership row (the routers' owner check
  and the quota layer's live-load count) and starts a meter;
* on ``point-done`` / ``cache-hit`` — counts computed vs cached points;
* on a terminal event — closes the meter into one usage-ledger row:
  points answered, computed, cache hits, wall seconds, and the delta of
  the native engine's compile-seconds counter across the job's lifetime
  (best-effort: concurrent jobs share one process-wide counter, so
  overlapping compiles attribute to whichever job's window they land in).

Ordering caveat: ``JobHandle._emit`` sets the finished flag *before*
listeners run, so a caller unblocked by ``result()`` can observe the
ledger row a beat later — poll when asserting on it.

Listeners fire for the ``queued`` event inside the submitting thread, so
ownership is durably recorded before ``POST /v1/jobs`` responds.  For jobs
revived by :func:`repro.api.journal.resume_jobs` (whose ``queued`` events
pre-date this process), :meth:`UsageService.adopt` scans the scheduler and
re-attaches ownership — tenancy rides the journaled tags, so it survives
``kill -9``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.api.gateway.store import GatewayStore, UsageRecord
from repro.api.jobs import JobEvent

#: The scheduler tag carrying ownership; everything after the colon is the
#: tenant id.  User-supplied tags with this prefix are stripped at submit.
TENANT_TAG_PREFIX = "tenant:"


def tenant_tag(tenant_id: str) -> str:
    return TENANT_TAG_PREFIX + tenant_id


def tenant_from_tags(tags) -> Optional[str]:
    """The owning tenant id named in a job's tags, or ``None``."""
    for tag in tags or ():
        if isinstance(tag, str) and tag.startswith(TENANT_TAG_PREFIX):
            return tag[len(TENANT_TAG_PREFIX):]
    return None


@dataclass
class _Meter:
    """The running tally for one live tenant job."""

    tenant_id: str
    points: int = 0
    computed: int = 0
    cache_hits: int = 0
    started: float = field(default_factory=time.monotonic)
    native_seconds_at_start: float = 0.0


def _native_compile_seconds() -> float:
    from repro.engine import native

    _count, seconds, _hits = native.counters_snapshot()
    return seconds


class UsageService:
    """Meter tenant jobs from the event stream into the usage ledger."""

    def __init__(self, store: GatewayStore) -> None:
        self.store = store
        self._lock = threading.Lock()
        self._meters: Dict[str, _Meter] = {}

    # ------------------------------------------------------------------ #
    # Scheduler listener
    # ------------------------------------------------------------------ #
    def on_event(self, event: JobEvent) -> None:
        """The scheduler listener.  Exceptions are swallowed by the
        emitting :class:`JobHandle` (a broken store must not kill jobs)."""
        if event.kind == "queued":
            self._on_queued(event)
        elif event.kind == "point-done":
            self._bump(event.job_id, computed=1)
        elif event.kind == "cache-hit":
            self._bump(event.job_id, cache_hits=1)
        elif event.terminal:
            self._on_terminal(event)

    def _on_queued(self, event: JobEvent) -> None:
        payload = event.payload or {}
        tenant_id = tenant_from_tags(payload.get("tags"))
        if tenant_id is None:
            return
        points = int(payload.get("points", 0))
        self.store.record_job(event.job_id, tenant_id, points, state="queued")
        with self._lock:
            self._meters[event.job_id] = _Meter(
                tenant_id=tenant_id,
                points=points,
                native_seconds_at_start=_native_compile_seconds(),
            )

    def _bump(self, job_id: str, computed: int = 0, cache_hits: int = 0) -> None:
        with self._lock:
            meter = self._meters.get(job_id)
            if meter is None:
                return
            meter.computed += computed
            meter.cache_hits += cache_hits

    def _on_terminal(self, event: JobEvent) -> None:
        with self._lock:
            meter = self._meters.pop(event.job_id, None)
        if meter is None:
            return
        outcome = event.kind  # done / failed / cancelled
        self.store.record_usage(
            UsageRecord(
                tenant_id=meter.tenant_id,
                job_id=event.job_id,
                recorded=time.time(),
                points=meter.points,
                computed=meter.computed,
                cache_hits=meter.cache_hits,
                wall_seconds=max(0.0, time.monotonic() - meter.started),
                native_compile_seconds=max(
                    0.0, _native_compile_seconds() - meter.native_seconds_at_start
                ),
                outcome=outcome,
            )
        )
        self.store.set_job_state(event.job_id, outcome)

    # ------------------------------------------------------------------ #
    # Crash recovery
    # ------------------------------------------------------------------ #
    def adopt(self, scheduler) -> int:
        """Re-attach ownership of jobs already living in ``scheduler``.

        Called once at gateway startup, *after* ``resume_jobs``: resumed
        jobs were re-submitted before this listener existed, so their
        ``queued`` events were never observed here.  Tenancy rides the
        journaled ``tenant:`` tag.  Non-terminal jobs get a fresh meter
        (wall time restarts — the pre-crash portion is not recoverable).

        Returns the number of jobs adopted.
        """
        adopted = 0
        for handle in scheduler.jobs():
            tenant_id = tenant_from_tags(handle.tags)
            if tenant_id is None:
                continue
            adopted += 1
            points = len(handle.requests)
            if handle.done:
                self.store.record_job(
                    handle.job_id, tenant_id, points, state=handle.state
                )
                continue
            self.store.record_job(handle.job_id, tenant_id, points, state="queued")
            with self._lock:
                if handle.job_id not in self._meters:
                    self._meters[handle.job_id] = _Meter(
                        tenant_id=tenant_id,
                        points=points,
                        native_seconds_at_start=_native_compile_seconds(),
                    )
        return adopted
