"""Per-tenant admission control, enforced *before* ``Scheduler.submit``.

Three limits, each either a per-tenant override (a column on the tenant
row) or the gateway-wide default (:class:`QuotaDefaults`, configurable via
CLI flags / ``REPRO_GATEWAY_*`` env vars); ``None`` anywhere means
unlimited:

* **concurrent jobs** — live (queued or running) jobs the tenant may hold;
* **queued points** — points across those live jobs;
* **points per window** — ledger points in the rolling usage window
  (default one day — the "points/day" quota).

A breach raises :class:`QuotaExceeded` carrying ``retry_after`` seconds —
for the windowed quota that is the honest time until the oldest ledger row
ages out; for load quotas it is a short poll hint, since the limit clears
whenever one of the tenant's own jobs finishes.  The router maps it to a
429 with a ``Retry-After`` header.  Nothing is reserved: the check is
advisory-read + submit, and the job row written at submit is what the next
check counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.api.gateway.store import GatewayStore, Tenant

#: The rolling usage window (seconds) behind "points per day".
DEFAULT_WINDOW_SECONDS = 86400.0

#: Retry hint for load quotas, which clear as soon as a job finishes.
LOAD_RETRY_AFTER = 5.0


@dataclass(frozen=True)
class QuotaDefaults:
    """Gateway-wide fallback limits (``None`` = unlimited)."""

    max_concurrent_jobs: Optional[int] = None
    max_queued_points: Optional[int] = None
    points_per_day: Optional[int] = None


class QuotaExceeded(RuntimeError):
    """A submit would breach a quota (→ HTTP 429 + ``Retry-After``)."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class QuotaService:
    """Answer "may this tenant enqueue N more points right now?"."""

    def __init__(
        self,
        store: GatewayStore,
        defaults: Optional[QuotaDefaults] = None,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
    ) -> None:
        self.store = store
        self.defaults = defaults if defaults is not None else QuotaDefaults()
        self.window_seconds = window_seconds

    def effective(self, tenant: Tenant) -> Dict[str, Optional[int]]:
        """The limits that actually apply: tenant override, else default."""
        defaults = self.defaults
        return {
            "max_concurrent_jobs": (
                tenant.max_concurrent_jobs
                if tenant.max_concurrent_jobs is not None
                else defaults.max_concurrent_jobs
            ),
            "max_queued_points": (
                tenant.max_queued_points
                if tenant.max_queued_points is not None
                else defaults.max_queued_points
            ),
            "points_per_day": (
                tenant.points_per_day
                if tenant.points_per_day is not None
                else defaults.points_per_day
            ),
        }

    def check(self, tenant: Tenant, points: int) -> None:
        """Raise :class:`QuotaExceeded` if admitting ``points`` would breach.

        Called before ``Scheduler.submit`` so a rejected request never
        touches the journal or the queue.
        """
        limits = self.effective(tenant)
        active_jobs, queued_points = self.store.active_load(tenant.tenant_id)

        limit = limits["max_concurrent_jobs"]
        if limit is not None and active_jobs >= limit:
            raise QuotaExceeded(
                f"concurrent job limit reached ({active_jobs}/{limit})",
                retry_after=LOAD_RETRY_AFTER,
            )

        limit = limits["max_queued_points"]
        if limit is not None and queued_points + points > limit:
            raise QuotaExceeded(
                f"queued point limit would be exceeded "
                f"({queued_points} queued + {points} requested > {limit})",
                retry_after=LOAD_RETRY_AFTER,
            )

        limit = limits["points_per_day"]
        if limit is not None:
            used, expires_in = self.store.points_in_window(
                tenant.tenant_id, self.window_seconds
            )
            if used + points > limit:
                # Retry when the oldest windowed ledger row ages out; an
                # empty window (limit smaller than the batch) can only
                # clear via a config change, so quote the full window.
                retry_after = expires_in if expires_in > 0 else self.window_seconds
                raise QuotaExceeded(
                    f"usage window limit would be exceeded "
                    f"({used} used + {points} requested > {limit} per "
                    f"{self.window_seconds:.0f}s)",
                    retry_after=retry_after,
                )
