"""The gateway's routers: HTTP/1.1 + JSON over the durable scheduler.

:class:`GatewayServer` mounts a threading stdlib HTTP server
(``http.server`` — no new runtime deps) in front of one
:class:`~repro.api.service.SimulationService` and its journaled
:class:`~repro.api.scheduler.Scheduler`, with the
:mod:`~repro.api.gateway.store`/:mod:`~repro.api.gateway.auth`/
:mod:`~repro.api.gateway.quota`/:mod:`~repro.api.gateway.usage` layers
behind it.  The framed-TCP protocol (``repro serve``) is untouched; this
is the untrusted-client front door.

Routes (all JSON unless noted):

========  ==========================  =====================================
Method    Path                        Semantics
========  ==========================  =====================================
GET       ``/healthz``                Liveness + scheduler stats (no auth)
GET       ``/v1/workloads``           The service's workload names
POST      ``/v1/jobs``                Submit a request batch → job id
GET       ``/v1/jobs/{id}/events``    Server-Sent Events stream of the
                                      job's :class:`JobEvent`\\ s;
                                      ``Last-Event-ID`` (or ``?after_seq``)
                                      resumes via the journal-backed
                                      ``after_seq`` replay
GET       ``/v1/jobs/{id}/result``    ``ResultSet.to_wire`` (``?wait=S``
                                      blocks up to S seconds)
DELETE    ``/v1/jobs/{id}``           Cancel (owner-only)
GET       ``/v1/usage``               Ledger totals + live load + quotas
========  ==========================  =====================================

Error vocabulary: 401 (bad/missing key, with ``WWW-Authenticate``), 404
(unknown *or foreign* job — foreign ids are indistinguishable from absent
ones by design), 409 (result not ready / job cancelled), 429 (quota, with
``Retry-After``), 400 (malformed body), 500 (typed ``internal-error``).

Every request passes the ``gateway-request`` fault site before routing
(see :mod:`repro.testing.faults`), so the chaos suite can crash or kill
the gateway mid-request deterministically.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.api.gateway.auth import AuthError, AuthService
from repro.api.gateway.quota import (
    DEFAULT_WINDOW_SECONDS,
    QuotaDefaults,
    QuotaExceeded,
    QuotaService,
)
from repro.api.gateway.store import GatewayStore, Tenant
from repro.api.gateway.usage import (
    TENANT_TAG_PREFIX,
    UsageService,
    tenant_from_tags,
    tenant_tag,
)
from repro.api.jobs import JobHandle
from repro.api.request import SimulationRequest

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.api.service import SimulationService

#: Set by :mod:`repro.testing.faults`; visited before routing a request.
FAULT_HOOK = None

#: Cap on request bodies, far above any sane batch.
MAX_BODY_BYTES = 16 * 1024 * 1024


class ApiError(RuntimeError):
    """A routed request failed with a specific HTTP status."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


class GatewayServer:
    """One gateway instance: HTTP front, service/store behind.

    Embeddable in-process for tests (``port=0`` picks a free port) and the
    body of ``repro gateway``.  Binding happens in ``__init__`` — a taken
    port raises ``OSError`` here, which the CLI turns into a one-line
    diagnosis.
    """

    def __init__(
        self,
        service: "SimulationService",
        store: GatewayStore,
        host: str = "127.0.0.1",
        port: int = 0,
        usage_window: float = DEFAULT_WINDOW_SECONDS,
        defaults: Optional[QuotaDefaults] = None,
    ) -> None:
        self.service = service
        self.store = store
        self.auth = AuthService(store)
        self.quota = QuotaService(store, defaults, window_seconds=usage_window)
        self.usage = UsageService(store)
        # Listener first, then adopt: jobs resumed after construction emit
        # their (re-)queued events through the listener; jobs resumed
        # *before* construction are picked up by the adopt scan.
        service.scheduler.add_listener(self.usage.on_event)
        self.usage.adopt(service.scheduler)
        gateway = self
        handler = type(
            "GatewayHandler",
            (_Handler,),
            {"gateway": gateway, "protocol_version": "HTTP/1.1"},
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "GatewayServer":
        """Serve on a daemon thread (the embeddable/test entry)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-gateway",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI entry)."""
        self._httpd.serve_forever(poll_interval=0.1)

    def close(self) -> None:
        """Stop accepting; running jobs and the store are left alone."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def drain(self, timeout: float = 30.0) -> None:
        """Graceful shutdown mirroring ``JobServer.drain``: stop accepting,
        cancel jobs at their next round boundary *without* journaling the
        cancels (they stay pending and resume next start), checkpoint the
        journal, close the store."""
        self.close()
        journal = self.service.journal
        if journal is not None:
            journal.draining = True
        scheduler = self.service._scheduler
        if scheduler is not None:
            for job in scheduler.jobs():
                if not job.done:
                    job.cancel()
            deadline = time.monotonic() + timeout
            for job in scheduler.jobs():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                job._finished.wait(remaining)
            scheduler.close()
        if journal is not None:
            journal.checkpoint()
            journal.close()
        self.store.close()

    def __enter__(self) -> "GatewayServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def handle(self, request: "_Handler", method: str) -> None:
        """Route one request; every error becomes a JSON response."""
        parts = urlsplit(request.path)
        path = parts.path.rstrip("/") or "/"
        query = parse_qs(parts.query)
        try:
            if FAULT_HOOK is not None:
                FAULT_HOOK("gateway-request", method=method, path=path)
            self._route(request, method, path, query)
        except AuthError as exc:
            request.send_json(
                401,
                {"ok": False, "error": "unauthorized", "message": str(exc)},
                headers={"WWW-Authenticate": 'Bearer realm="repro-gateway"'},
            )
        except QuotaExceeded as exc:
            retry_after = max(1, int(exc.retry_after + 0.999))
            request.send_json(
                429,
                {
                    "ok": False,
                    "error": "quota-exceeded",
                    "message": str(exc),
                    "retry_after": retry_after,
                },
                headers={"Retry-After": str(retry_after)},
            )
        except ApiError as exc:
            request.send_json(
                exc.status, {"ok": False, "error": exc.code, "message": str(exc)}
            )
        except (BrokenPipeError, ConnectionResetError):
            # The client went away mid-response (SSE disconnects land
            # here); nothing to send and nothing to clean up — the job
            # keeps running and the client resumes via Last-Event-ID.
            request.close_connection = True
        except Exception as exc:  # noqa: BLE001 - typed 500, never a traceback page
            try:
                request.send_json(
                    500,
                    {
                        "ok": False,
                        "error": "internal-error",
                        "message": f"{type(exc).__name__}: {exc}",
                    },
                )
            except (BrokenPipeError, ConnectionResetError, OSError):
                request.close_connection = True

    def _route(
        self,
        request: "_Handler",
        method: str,
        path: str,
        query: Dict[str, List[str]],
    ) -> None:
        if path == "/healthz" and method == "GET":
            self._healthz(request)
            return
        if not path.startswith("/v1/"):
            raise ApiError(404, "not-found", f"no route for {method} {path}")
        tenant = self.auth.authenticate(request.headers.get("Authorization"))
        if path == "/v1/workloads" and method == "GET":
            request.send_json(
                200, {"ok": True, "workloads": list(self.service.workloads)}
            )
            return
        if path == "/v1/usage" and method == "GET":
            self._usage(request, tenant)
            return
        if path == "/v1/jobs" and method == "POST":
            self._submit(request, tenant)
            return
        job_route = self._parse_job_path(path)
        if job_route is not None:
            job_id, leaf = job_route
            handle = self._owned_job(tenant, job_id)
            if leaf is None and method == "DELETE":
                self._cancel(request, handle)
                return
            if leaf == "events" and method == "GET":
                self._events(request, handle, query)
                return
            if leaf == "result" and method == "GET":
                self._result(request, handle, query)
                return
        raise ApiError(404, "not-found", f"no route for {method} {path}")

    @staticmethod
    def _parse_job_path(path: str) -> Optional[Tuple[str, Optional[str]]]:
        """``/v1/jobs/{id}[/events|/result]`` → ``(id, leaf)``."""
        segments = path.split("/")[1:]  # drop the leading ''
        if len(segments) < 3 or segments[:2] != ["v1", "jobs"] or not segments[2]:
            return None
        if len(segments) == 3:
            return segments[2], None
        if len(segments) == 4 and segments[3] in ("events", "result"):
            return segments[2], segments[3]
        return None

    def _owned_job(self, tenant: Tenant, job_id: str) -> JobHandle:
        """The handle, iff ``tenant`` owns ``job_id``; 404 otherwise.

        Ownership is the store's job index, falling back to the live
        handle's ``tenant:`` tag (covers a job submitted before its
        ownership row committed).  Foreign jobs 404 — not 403 — so tenants
        cannot probe for other tenants' job ids.
        """
        handle = self.service.scheduler.get_job(job_id)
        if handle is None:
            raise ApiError(404, "not-found", f"no such job {job_id!r}")
        owner = self.store.job_owner(job_id)
        if owner is None:
            owner = tenant_from_tags(handle.tags)
        if owner != tenant.tenant_id:
            raise ApiError(404, "not-found", f"no such job {job_id!r}")
        return handle

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def _healthz(self, request: "_Handler") -> None:
        service = self.service
        stats = service.stats()
        request.send_json(
            200,
            {
                "ok": True,
                "server": "repro-gateway",
                "backend": stats.get("backend"),
                "engine_tier": stats.get("engine_tier"),
                "workloads": len(service.workloads),
                "scheduler": stats.get("scheduler"),
                # Operator visibility into the artifact cache — notably the
                # quarantined counter (corrupt entries set aside on read).
                "artifact_cache": stats.get("artifact_cache"),
                "journal": (
                    service.journal.path if service.journal is not None else None
                ),
                "store": self.store.path,
            },
        )

    def _usage(self, request: "_Handler", tenant: Tenant) -> None:
        active_jobs, queued_points = self.store.active_load(tenant.tenant_id)
        window_points, _expires = self.store.points_in_window(
            tenant.tenant_id, self.quota.window_seconds
        )
        request.send_json(
            200,
            {
                "ok": True,
                "tenant": tenant.name,
                "tenant_id": tenant.tenant_id,
                "totals": self.store.usage_totals(tenant.tenant_id),
                "window": {
                    "seconds": self.quota.window_seconds,
                    "points": window_points,
                },
                "active": {"jobs": active_jobs, "queued_points": queued_points},
                "quotas": self.quota.effective(tenant),
            },
        )

    def _submit(self, request: "_Handler", tenant: Tenant) -> None:
        body = request.read_json_body()
        raw_requests = body.get("requests")
        if not isinstance(raw_requests, list) or not raw_requests:
            raise ApiError(
                400, "bad-request", "body must carry a non-empty 'requests' list"
            )
        try:
            submitted = [SimulationRequest.from_dict(entry) for entry in raw_requests]
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ApiError(400, "bad-request", f"bad request entry: {exc}") from exc
        priority = body.get("priority", 0)
        if not isinstance(priority, int):
            raise ApiError(400, "bad-request", "'priority' must be an integer")
        raw_tags = body.get("tags", [])
        if not isinstance(raw_tags, list) or not all(
            isinstance(tag, str) for tag in raw_tags
        ):
            raise ApiError(400, "bad-request", "'tags' must be a list of strings")
        # Ownership is ours to assert, never the client's.
        tags = [tag for tag in raw_tags if not tag.startswith(TENANT_TAG_PREFIX)]
        tags.append(tenant_tag(tenant.tenant_id))

        try:
            expanded = self.service.expand(submitted)
        except Exception as exc:  # noqa: BLE001 - bad matrices etc.
            raise ApiError(400, "bad-request", f"cannot expand batch: {exc}") from exc
        # Unknown registry workloads would only fail at preparation, deep
        # inside the job; reject them at the door instead.
        from repro.pipeline.pipeline import workload_names

        known = set(workload_names())
        unknown = sorted(
            {
                request.workload.name
                for request in expanded
                if request.workload.kind == "registry"
                and request.workload.name not in known
            }
        )
        if unknown:
            raise ApiError(400, "bad-request", f"unknown workload(s): {unknown}")
        self.quota.check(tenant, len(expanded))
        handle = self.service.scheduler.submit(submitted, priority=priority, tags=tags)
        request.send_json(
            202,
            {
                "ok": True,
                "job": handle.job_id,
                "points": len(handle.requests),
                "priority": priority,
            },
        )

    def _cancel(self, request: "_Handler", handle: JobHandle) -> None:
        cancelled = handle.cancel()
        request.send_json(
            200,
            {
                "ok": True,
                "job": handle.job_id,
                "cancelled": cancelled,
                "state": handle.state,
            },
        )

    def _events(
        self, request: "_Handler", handle: JobHandle, query: Dict[str, List[str]]
    ) -> None:
        after_seq: Optional[int] = None
        last_event_id = request.headers.get("Last-Event-ID")
        if last_event_id is None and "after_seq" in query:
            last_event_id = query["after_seq"][0]
        if last_event_id is not None:
            try:
                after_seq = int(last_event_id)
            except ValueError as exc:
                raise ApiError(
                    400, "bad-request", f"bad Last-Event-ID {last_event_id!r}"
                ) from exc
        request.send_response(200)
        request.send_header("Content-Type", "text/event-stream; charset=utf-8")
        request.send_header("Cache-Control", "no-cache")
        request.send_header("Connection", "close")
        request.end_headers()
        request.close_connection = True
        # Each JobEvent maps 1:1 to an SSE frame: the monotonic seq is the
        # event id (what a reconnecting client echoes as Last-Event-ID),
        # the kind is the event name, the JSON dict is the data line.
        for event in handle.events(after_seq=after_seq):
            frame = (
                f"id: {event.seq}\n"
                f"event: {event.kind}\n"
                f"data: {json.dumps(event.as_dict(), sort_keys=True)}\n\n"
            )
            request.wfile.write(frame.encode("utf-8"))
            request.wfile.flush()

    def _result(
        self, request: "_Handler", handle: JobHandle, query: Dict[str, List[str]]
    ) -> None:
        if "wait" in query:
            try:
                wait = float(query["wait"][0])
            except ValueError as exc:
                raise ApiError(400, "bad-request", "bad 'wait' value") from exc
            try:
                handle.result(timeout=wait)
            except BaseException:  # noqa: BLE001
                pass  # state-based dispatch below reports what happened
        state = handle.state
        if not handle.done:
            raise ApiError(
                409, "not-ready", f"job {handle.job_id} is still {state}"
            )
        if state == "failed":
            try:
                handle.result(timeout=0)
            except BaseException as exc:  # noqa: BLE001
                raise ApiError(
                    500, "job-failed", f"job {handle.job_id} failed: {exc}"
                ) from exc
        if state == "cancelled":
            request.send_json(
                409,
                {
                    "ok": False,
                    "error": "cancelled",
                    "message": f"job {handle.job_id} was cancelled",
                    "partial": json.loads(handle.partial().to_wire()),
                },
            )
            return
        wire = handle.result(timeout=0).to_wire()
        request.send_body(200, wire.encode("utf-8"), "application/json")


class _Handler(BaseHTTPRequestHandler):
    """Per-connection plumbing; all routing lives on :class:`GatewayServer`."""

    gateway: GatewayServer  # overridden by the per-instance subclass
    server_version = "repro-gateway"

    # ------------------------------------------------------------------ #
    # Verb entry points
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler contract
        self.gateway.handle(self, "GET")

    def do_POST(self) -> None:  # noqa: N802
        self.gateway.handle(self, "POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self.gateway.handle(self, "DELETE")

    # ------------------------------------------------------------------ #
    # Response helpers
    # ------------------------------------------------------------------ #
    def send_body(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_body(status, body, "application/json; charset=utf-8", headers)

    def read_json_body(self) -> Dict[str, Any]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError as exc:
            raise ApiError(400, "bad-request", "bad Content-Length") from exc
        if length <= 0:
            raise ApiError(400, "bad-request", "a JSON body is required")
        if length > MAX_BODY_BYTES:
            raise ApiError(413, "too-large", f"body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ApiError(400, "bad-request", f"body is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ApiError(400, "bad-request", "body must be a JSON object")
        return payload

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # requests are the tests' business, not stderr's
