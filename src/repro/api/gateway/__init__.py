"""The multi-tenant HTTP/JSON gateway over the durable scheduler.

Three layers, mirroring the routers/services/models split:

* :mod:`~repro.api.gateway.store` — **models**: the SQLite
  :class:`~repro.api.gateway.store.GatewayStore` (tenants, hashed API
  keys, quotas, usage ledger, job ownership) living next to the job
  journal in ``--state-dir``.
* :mod:`~repro.api.gateway.auth` / :mod:`~repro.api.gateway.quota` /
  :mod:`~repro.api.gateway.usage` — **services**: bearer-key
  authentication, pre-submit admission control, and event-stream usage
  metering.
* :mod:`~repro.api.gateway.http` — **routers**: the stdlib HTTP/1.1
  server mapping ``/v1`` routes onto the scheduler, including the
  Server-Sent Events job stream with ``Last-Event-ID`` resume.

``repro gateway`` (and ``repro gateway admin``) in :mod:`repro.cli` is
the operational entry; :class:`~repro.api.gateway.http.GatewayServer` is
the embeddable one.
"""

from repro.api.gateway.auth import AuthError, AuthService
from repro.api.gateway.http import GatewayServer
from repro.api.gateway.quota import QuotaDefaults, QuotaExceeded, QuotaService
from repro.api.gateway.store import ApiKey, GatewayStore, Tenant, UsageRecord
from repro.api.gateway.usage import UsageService, tenant_from_tags, tenant_tag

__all__ = [
    "ApiKey",
    "AuthError",
    "AuthService",
    "GatewayServer",
    "GatewayStore",
    "QuotaDefaults",
    "QuotaExceeded",
    "QuotaService",
    "Tenant",
    "UsageRecord",
    "UsageService",
    "tenant_from_tags",
    "tenant_tag",
]
