"""The gateway's models layer: tenants, API keys, quotas, usage, ownership.

:class:`GatewayStore` is one SQLite file (``<state-dir>/gateway.sqlite3``)
living next to the PR-8 job journal, holding everything the stateless HTTP
tier needs to remember across restarts:

* **tenants** — the unit of isolation, each with three nullable quota
  columns (``NULL`` = fall back to the gateway's configured defaults):
  concurrent jobs, queued points, and points per rolling usage window.
* **api_keys** — SHA-256 *hashes* of issued bearer keys (the plaintext is
  printed exactly once at creation and never stored), with a short
  ``key_id`` prefix for admin listing/revocation.
* **usage** — one ledger row per finished job: points answered, computed
  vs cache hits, wall seconds, native compile seconds.  The quota layer
  sums the rolling window over this table.
* **jobs** — the job-ownership index (job id → tenant) plus a coarse
  state, so routers can answer "is this *your* job?" without touching the
  scheduler, and the quota layer can count a tenant's live load.

Durability matches the journal's append-then-fsync discipline:
``PRAGMA synchronous=FULL`` makes every commit an fsync, so a ``kill -9``
after any acknowledged write never loses it, and SQLite's rollback journal
gives the atomicity the JSONL journal gets from single-line appends.  Every
write passes the ``store-write`` fault site first (see
:mod:`repro.testing.faults`), so the chaos suite can crash or kill the
gateway *before* a write commits and assert nothing torn survives.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import secrets
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Set by :mod:`repro.testing.faults` when a plan is armed; visited as
#: ``FAULT_HOOK("store-write", path=...)`` before every committed write.
FAULT_HOOK = None

#: The store file inside a state dir (next to ``journal.jsonl``).
STORE_NAME = "gateway.sqlite3"

#: Plaintext API keys look like ``rk_<64 hex chars>``.
KEY_PREFIX = "rk_"

#: Length of the ``key_id`` admin handle (a prefix of the key hash).
KEY_ID_LEN = 12

_SCHEMA = """
CREATE TABLE IF NOT EXISTS tenants (
    tenant_id           TEXT PRIMARY KEY,
    name                TEXT NOT NULL UNIQUE,
    created             REAL NOT NULL,
    max_concurrent_jobs INTEGER,
    max_queued_points   INTEGER,
    points_per_day      INTEGER
);
CREATE TABLE IF NOT EXISTS api_keys (
    key_hash  TEXT PRIMARY KEY,
    key_id    TEXT NOT NULL,
    tenant_id TEXT NOT NULL REFERENCES tenants(tenant_id),
    label     TEXT NOT NULL DEFAULT '',
    created   REAL NOT NULL,
    revoked   REAL
);
CREATE TABLE IF NOT EXISTS usage (
    entry_id               INTEGER PRIMARY KEY AUTOINCREMENT,
    tenant_id              TEXT NOT NULL,
    job_id                 TEXT NOT NULL,
    recorded               REAL NOT NULL,
    points                 INTEGER NOT NULL,
    computed               INTEGER NOT NULL,
    cache_hits             INTEGER NOT NULL,
    wall_seconds           REAL NOT NULL,
    native_compile_seconds REAL NOT NULL DEFAULT 0.0,
    outcome                TEXT NOT NULL DEFAULT 'done'
);
CREATE INDEX IF NOT EXISTS usage_tenant_time ON usage(tenant_id, recorded);
CREATE TABLE IF NOT EXISTS jobs (
    job_id    TEXT PRIMARY KEY,
    tenant_id TEXT NOT NULL,
    submitted REAL NOT NULL,
    points    INTEGER NOT NULL,
    state     TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS jobs_tenant ON jobs(tenant_id, state);
"""

#: Job states the quota layer counts as live load.
ACTIVE_JOB_STATES = ("queued", "running")


@dataclass(frozen=True)
class Tenant:
    """One tenant: identity plus its (nullable) quota overrides."""

    tenant_id: str
    name: str
    created: float
    max_concurrent_jobs: Optional[int] = None
    max_queued_points: Optional[int] = None
    points_per_day: Optional[int] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "tenant_id": self.tenant_id,
            "name": self.name,
            "created": self.created,
            "max_concurrent_jobs": self.max_concurrent_jobs,
            "max_queued_points": self.max_queued_points,
            "points_per_day": self.points_per_day,
        }


@dataclass(frozen=True)
class ApiKey:
    """One issued key's metadata (the plaintext is never stored)."""

    key_id: str
    tenant_id: str
    label: str
    created: float
    revoked: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.revoked is None

    def as_dict(self) -> Dict[str, object]:
        return {
            "key_id": self.key_id,
            "tenant_id": self.tenant_id,
            "label": self.label,
            "created": self.created,
            "revoked": self.revoked,
        }


@dataclass(frozen=True)
class UsageRecord:
    """One ledger row: what one finished job cost its tenant."""

    tenant_id: str
    job_id: str
    recorded: float
    points: int
    computed: int
    cache_hits: int
    wall_seconds: float
    native_compile_seconds: float = 0.0
    outcome: str = "done"


def hash_key(plaintext: str) -> str:
    """The stored form of an API key: its SHA-256 hex digest."""
    return hashlib.sha256(plaintext.encode("utf-8")).hexdigest()


class GatewayStore:
    """The SQLite persistence of one gateway ``--state-dir``.

    Thread-safe: one connection, one lock, every write committed (and
    fsync'd, ``synchronous=FULL``) before the call returns.  Reopening the
    same state dir — including after ``kill -9`` — sees every acknowledged
    write.
    """

    def __init__(self, state_dir: str) -> None:
        self.state_dir = state_dir
        os.makedirs(state_dir, exist_ok=True)
        self.path = os.path.join(state_dir, STORE_NAME)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.execute("PRAGMA synchronous=FULL")
        with self._lock:
            self._conn.executescript(_SCHEMA)
            self._conn.commit()

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "GatewayStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Write plumbing
    # ------------------------------------------------------------------ #
    def _write(self, sql: str, params: Tuple = ()) -> None:
        """One committed write, passing the ``store-write`` fault site first.

        The fault hook fires *before* the statement executes, so an
        injected crash or ``kill -9`` at this site models dying ahead of
        the commit: the acknowledged store state is exactly what it was.
        """
        if FAULT_HOOK is not None:
            FAULT_HOOK("store-write", path=self.path, sql=sql.split(None, 1)[0])
        with self._lock:
            self._conn.execute(sql, params)
            self._conn.commit()

    # ------------------------------------------------------------------ #
    # Tenants
    # ------------------------------------------------------------------ #
    def create_tenant(
        self,
        name: str,
        max_concurrent_jobs: Optional[int] = None,
        max_queued_points: Optional[int] = None,
        points_per_day: Optional[int] = None,
    ) -> Tenant:
        if not name:
            raise ValueError("tenant name must be non-empty")
        if self.tenant_by_name(name) is not None:
            raise ValueError(f"tenant {name!r} already exists")
        tenant = Tenant(
            tenant_id=f"t-{secrets.token_hex(6)}",
            name=name,
            created=time.time(),
            max_concurrent_jobs=max_concurrent_jobs,
            max_queued_points=max_queued_points,
            points_per_day=points_per_day,
        )
        self._write(
            "INSERT INTO tenants VALUES (?, ?, ?, ?, ?, ?)",
            (
                tenant.tenant_id,
                tenant.name,
                tenant.created,
                tenant.max_concurrent_jobs,
                tenant.max_queued_points,
                tenant.points_per_day,
            ),
        )
        return tenant

    def set_quotas(
        self,
        tenant_id: str,
        max_concurrent_jobs: Optional[int] = None,
        max_queued_points: Optional[int] = None,
        points_per_day: Optional[int] = None,
    ) -> Tenant:
        """Replace a tenant's quota overrides (``None`` = use defaults)."""
        if self.get_tenant(tenant_id) is None:
            raise KeyError(f"unknown tenant {tenant_id!r}")
        self._write(
            "UPDATE tenants SET max_concurrent_jobs=?, max_queued_points=?, "
            "points_per_day=? WHERE tenant_id=?",
            (max_concurrent_jobs, max_queued_points, points_per_day, tenant_id),
        )
        tenant = self.get_tenant(tenant_id)
        assert tenant is not None
        return tenant

    @staticmethod
    def _tenant_row(row) -> Tenant:
        return Tenant(
            tenant_id=row[0],
            name=row[1],
            created=row[2],
            max_concurrent_jobs=row[3],
            max_queued_points=row[4],
            points_per_day=row[5],
        )

    def get_tenant(self, tenant_id: str) -> Optional[Tenant]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM tenants WHERE tenant_id=?", (tenant_id,)
            ).fetchone()
        return self._tenant_row(row) if row else None

    def tenant_by_name(self, name: str) -> Optional[Tenant]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM tenants WHERE name=?", (name,)
            ).fetchone()
        return self._tenant_row(row) if row else None

    def list_tenants(self) -> List[Tenant]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM tenants ORDER BY created, tenant_id"
            ).fetchall()
        return [self._tenant_row(row) for row in rows]

    # ------------------------------------------------------------------ #
    # API keys
    # ------------------------------------------------------------------ #
    def issue_key(self, tenant_id: str, label: str = "") -> Tuple[str, ApiKey]:
        """Mint a key for ``tenant_id``; returns ``(plaintext, metadata)``.

        The plaintext is the only copy — hand it to the tenant now; the
        store keeps the hash.
        """
        if self.get_tenant(tenant_id) is None:
            raise KeyError(f"unknown tenant {tenant_id!r}")
        plaintext = KEY_PREFIX + secrets.token_hex(32)
        digest = hash_key(plaintext)
        key = ApiKey(
            key_id=digest[:KEY_ID_LEN],
            tenant_id=tenant_id,
            label=label,
            created=time.time(),
        )
        self._write(
            "INSERT INTO api_keys VALUES (?, ?, ?, ?, ?, NULL)",
            (digest, key.key_id, tenant_id, label, key.created),
        )
        return plaintext, key

    def revoke_key(self, key_id: str) -> bool:
        """Revoke by admin ``key_id``; False when unknown/already revoked."""
        with self._lock:
            row = self._conn.execute(
                "SELECT key_hash FROM api_keys WHERE key_id=? AND revoked IS NULL",
                (key_id,),
            ).fetchone()
        if row is None:
            return False
        self._write(
            "UPDATE api_keys SET revoked=? WHERE key_hash=?", (time.time(), row[0])
        )
        return True

    def list_keys(self, tenant_id: Optional[str] = None) -> List[ApiKey]:
        query = (
            "SELECT key_id, tenant_id, label, created, revoked FROM api_keys"
        )
        params: Tuple = ()
        if tenant_id is not None:
            query += " WHERE tenant_id=?"
            params = (tenant_id,)
        query += " ORDER BY created, key_id"
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [ApiKey(*row) for row in rows]

    def lookup_key(self, plaintext: str) -> Optional[Tenant]:
        """The tenant an active key belongs to, or ``None``.

        The presented key is hashed and compared against every active hash
        with :func:`hmac.compare_digest`, so the scan's timing does not
        depend on *which* stored key (if any) matches.
        """
        presented = hash_key(plaintext)
        with self._lock:
            rows = self._conn.execute(
                "SELECT key_hash, tenant_id FROM api_keys WHERE revoked IS NULL"
            ).fetchall()
        matched: Optional[str] = None
        for key_hash, tenant_id in rows:
            if hmac.compare_digest(presented, key_hash):
                matched = tenant_id
        if matched is None:
            return None
        return self.get_tenant(matched)

    # ------------------------------------------------------------------ #
    # Job ownership
    # ------------------------------------------------------------------ #
    def record_job(
        self, job_id: str, tenant_id: str, points: int, state: str = "running"
    ) -> None:
        """Register (or refresh) the ownership row of one job."""
        self._write(
            "INSERT INTO jobs VALUES (?, ?, ?, ?, ?) "
            "ON CONFLICT(job_id) DO UPDATE SET tenant_id=excluded.tenant_id, "
            "points=excluded.points, state=excluded.state",
            (job_id, tenant_id, time.time(), points, state),
        )

    def set_job_state(self, job_id: str, state: str) -> None:
        self._write("UPDATE jobs SET state=? WHERE job_id=?", (state, job_id))

    def job_owner(self, job_id: str) -> Optional[str]:
        with self._lock:
            row = self._conn.execute(
                "SELECT tenant_id FROM jobs WHERE job_id=?", (job_id,)
            ).fetchone()
        return row[0] if row else None

    def active_load(self, tenant_id: str) -> Tuple[int, int]:
        """``(active jobs, queued points)`` the tenant currently holds."""
        marks = ",".join("?" for _ in ACTIVE_JOB_STATES)
        with self._lock:
            row = self._conn.execute(
                f"SELECT COUNT(*), COALESCE(SUM(points), 0) FROM jobs "
                f"WHERE tenant_id=? AND state IN ({marks})",
                (tenant_id, *ACTIVE_JOB_STATES),
            ).fetchone()
        return int(row[0]), int(row[1])

    # ------------------------------------------------------------------ #
    # Usage ledger
    # ------------------------------------------------------------------ #
    def record_usage(self, record: UsageRecord) -> None:
        self._write(
            "INSERT INTO usage (tenant_id, job_id, recorded, points, computed, "
            "cache_hits, wall_seconds, native_compile_seconds, outcome) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                record.tenant_id,
                record.job_id,
                record.recorded,
                record.points,
                record.computed,
                record.cache_hits,
                record.wall_seconds,
                record.native_compile_seconds,
                record.outcome,
            ),
        )

    def usage_totals(self, tenant_id: str) -> Dict[str, float]:
        """Lifetime ledger totals for one tenant."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(points), 0), "
                "COALESCE(SUM(computed), 0), COALESCE(SUM(cache_hits), 0), "
                "COALESCE(SUM(wall_seconds), 0.0), "
                "COALESCE(SUM(native_compile_seconds), 0.0) "
                "FROM usage WHERE tenant_id=?",
                (tenant_id,),
            ).fetchone()
        return {
            "jobs": int(row[0]),
            "points": int(row[1]),
            "computed": int(row[2]),
            "cache_hits": int(row[3]),
            "wall_seconds": round(float(row[4]), 6),
            "native_compile_seconds": round(float(row[5]), 6),
        }

    def points_in_window(
        self, tenant_id: str, window_seconds: float, now: Optional[float] = None
    ) -> Tuple[int, float]:
        """``(points used, seconds until some expire)`` in the rolling window.

        The second element is how long until the *oldest* contributing
        ledger row ages out — the honest ``Retry-After`` for a tenant whose
        windowed quota is exhausted (0.0 when the window is empty).
        """
        now = time.time() if now is None else now
        since = now - window_seconds
        with self._lock:
            row = self._conn.execute(
                "SELECT COALESCE(SUM(points), 0), MIN(recorded) FROM usage "
                "WHERE tenant_id=? AND recorded > ?",
                (tenant_id, since),
            ).fetchone()
        points = int(row[0])
        oldest = row[1]
        if points == 0 or oldest is None:
            return 0, 0.0
        return points, max(0.0, oldest + window_seconds - now)
