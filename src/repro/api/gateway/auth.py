"""API-key authentication for the gateway's ``/v1`` surface.

One scheme: ``Authorization: Bearer rk_<hex>``.  The presented key is
hashed and matched against the store's active key hashes in constant time
(see :meth:`GatewayStore.lookup_key`); anything short of a match —
missing header, wrong scheme, malformed value, unknown or revoked key —
raises :class:`AuthError`, which the router maps to a 401 with a
``WWW-Authenticate`` challenge.  The error messages deliberately do not
distinguish "unknown" from "revoked".
"""

from __future__ import annotations

from typing import Optional

from repro.api.gateway.store import GatewayStore, Tenant


class AuthError(RuntimeError):
    """The request carries no acceptable credential (→ HTTP 401)."""


class AuthService:
    """Turn an ``Authorization`` header into the :class:`Tenant` behind it."""

    def __init__(self, store: GatewayStore) -> None:
        self.store = store

    def authenticate(self, authorization: Optional[str]) -> Tenant:
        if not authorization:
            raise AuthError("missing Authorization header")
        parts = authorization.split(None, 1)
        if len(parts) != 2 or parts[0].lower() != "bearer" or not parts[1].strip():
            raise AuthError("expected 'Authorization: Bearer <api-key>'")
        tenant = self.store.lookup_key(parts[1].strip())
        if tenant is None:
            raise AuthError("invalid API key")
        return tenant
