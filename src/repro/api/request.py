"""The declarative simulation request: one point, fully specified, portable.

:class:`SimulationRequest` is the atom of the public API: a frozen,
hashable value naming one (workload × design × :class:`CoreConfig` ×
BTU-flush × warm-up) simulation.  It round-trips through JSON (and hence
UTF-8 bytes), so the same object that drives an in-process
:class:`~repro.api.service.SimulationService` call is also the task half of
the shard backend's wire format — and of the future multi-host one.

Workloads are named by :class:`WorkloadRef`, which covers both the
22-workload registry (``WorkloadRef.registry("SHA-256")``) and kernels
built from arguments, like the Figure 8 synthetic mixes
(``WorkloadRef.synthetic("chacha20", "90s/10c")``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.uarch.config import GOLDEN_COVE_LIKE, CoreConfig

#: Bump when the JSON layout changes; ``from_json`` rejects other versions,
#: so a request never deserializes silently wrong across mixed deployments.
REQUEST_FORMAT_VERSION = 1


@dataclass(frozen=True)
class WorkloadRef:
    """A picklable, JSON-able name for one workload.

    ``kind`` selects the builder (mirroring
    :data:`repro.pipeline.parallel.KERNEL_BUILDERS`), ``name`` is the unique
    workload name artifacts and results are keyed by, and ``args`` are the
    builder's positional arguments for non-registry kinds.
    """

    kind: str = "registry"
    name: str = ""
    args: Tuple[str, ...] = ()
    suite: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("WorkloadRef requires a workload name")
        # JSON round-trips lists; normalize so equality and hashing hold.
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))

    @classmethod
    def registry(cls, name: str) -> "WorkloadRef":
        return cls(kind="registry", name=name)

    @classmethod
    def synthetic(cls, primitive: str, mix: str) -> "WorkloadRef":
        """A Figure 8 (primitive, mix) synthetic workload."""
        return cls(
            kind="synthetic",
            name=f"synthetic-{primitive}-{mix}",
            args=(primitive, mix),
            suite="synthetic",
        )

    def kernel_spec(self):
        """The pipeline's :class:`~repro.pipeline.parallel.KernelSpec`."""
        from repro.pipeline.parallel import KernelSpec

        return KernelSpec(kind=self.kind, name=self.name, args=self.args, suite=self.suite)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "args": list(self.args),
            "suite": self.suite,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "WorkloadRef":
        return cls(
            kind=payload["kind"],
            name=payload["name"],
            args=tuple(payload.get("args", ())),
            suite=payload.get("suite", ""),
        )


@dataclass(frozen=True)
class SimulationRequest:
    """One fully specified simulation point.

    Frozen and hashable — request sets deduplicate by value — and
    JSON-round-trippable via :meth:`to_json`/:meth:`from_json`, so requests
    cross process and host boundaries as plain text.
    """

    workload: WorkloadRef
    design: str
    config: CoreConfig = GOLDEN_COVE_LIKE
    btu_flush_interval: Optional[int] = None
    warmup_passes: int = 1

    def __post_init__(self) -> None:
        if isinstance(self.workload, str):
            object.__setattr__(self, "workload", WorkloadRef.registry(self.workload))
        if not self.design:
            raise ValueError("SimulationRequest requires a design name")

    # ------------------------------------------------------------------ #
    # Bridges into the execution layers
    # ------------------------------------------------------------------ #
    def key(self):
        """The :data:`~repro.experiments.runner.SimulationKey` of this point."""
        from repro.experiments.runner import simulation_key

        return simulation_key(
            self.design, self.config, self.btu_flush_interval, self.warmup_passes
        )

    def sort_key(self) -> Tuple:
        """A total order over requests (stable export/table ordering).

        Sorts by workload name, then design, then config digest, with
        flush-disabled (``None``) points before flushed ones and warm-up
        passes last — so exported rows are deterministic regardless of the
        insertion (or cross-job completion) order that produced them.
        """
        return (
            self.workload.name,
            self.design,
            self.config.digest(),
            self.btu_flush_interval is not None,
            self.btu_flush_interval or 0,
            self.warmup_passes,
        )

    def point(self):
        """The pipeline's :class:`~repro.pipeline.parallel.SimulationPoint`."""
        from repro.pipeline.parallel import SimulationPoint

        return SimulationPoint(
            workload=self.workload.name,
            design=self.design,
            config=self.config,
            btu_flush_interval=self.btu_flush_interval,
            warmup_passes=self.warmup_passes,
        )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, Any]:
        return {
            "version": REQUEST_FORMAT_VERSION,
            "workload": self.workload.as_dict(),
            "design": self.design,
            "config": self.config.as_dict(),
            "btu_flush_interval": self.btu_flush_interval,
            "warmup_passes": self.warmup_passes,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimulationRequest":
        version = payload.get("version", REQUEST_FORMAT_VERSION)
        if version != REQUEST_FORMAT_VERSION:
            raise ValueError(
                f"unsupported SimulationRequest format {version!r} "
                f"(this build speaks {REQUEST_FORMAT_VERSION})"
            )
        return cls(
            workload=WorkloadRef.from_dict(payload["workload"]),
            design=payload["design"],
            config=CoreConfig.from_dict(payload["config"]),
            btu_flush_interval=payload["btu_flush_interval"],
            warmup_passes=payload["warmup_passes"],
        )

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "SimulationRequest":
        return cls.from_dict(json.loads(text))

    def to_bytes(self) -> bytes:
        return self.to_json().encode("utf-8")

    @classmethod
    def from_bytes(cls, payload: bytes) -> "SimulationRequest":
        return cls.from_json(payload.decode("utf-8"))
