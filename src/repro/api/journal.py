"""Durable jobs: an append-only, fsync'd write-ahead journal per state dir.

``repro serve`` used to hold every queued and partially-complete job in
memory — a crash lost the sweep.  :class:`JobJournal` makes the job layer
crash-safe without a database: every job submission (the full
JSON-round-trippable :class:`~repro.api.request.SimulationRequest` batch
plus its tags and priority), every per-point completion (with a content
digest of the result), and every terminal state transition is appended as
one JSON line to ``<state-dir>/journal.jsonl`` and fsync'd before the
operation is considered done.

Crash-safety invariants:

* **Torn tails are tolerated** — a ``kill -9`` mid-append leaves at most one
  undecodable trailing line, which recovery skips; every fully written
  record survives.
* **Recovery is a pure fold** — :meth:`JobJournal.__init__` replays the
  journal: a job with a ``submit`` record but no terminal ``state`` record
  is *pending* and gets resubmitted by :func:`resume_jobs` under its
  original job id.  Its completed points are already in the artifact disk
  cache, so the resumed job re-executes exactly the remainder (the rest
  land as ``cache-hit`` events — observable, and asserted by the chaos
  suite).
* **Compaction is atomic** — on open, finished jobs' records are dropped by
  rewriting the journal through a temp file + ``os.replace``; a crash
  mid-compaction leaves either the old or the new journal, never a mix.
* **Monotonic seqs across restarts** — recovery reports the largest event
  ``seq`` seen, and the scheduler restarts its counter above it, so a
  client resuming a stream with ``events(after_seq=N)`` never sees a seq
  collision between incarnations.

Graceful shutdown (``SIGTERM``/``SIGINT`` on ``repro serve``) sets
:attr:`JobJournal.draining`: the drain cancels running jobs at their next
round boundary, but the journal *suppresses* their ``cancelled`` terminal
records so they remain pending and resume on the next start; a final
``checkpoint`` record marks the shutdown clean.
"""

from __future__ import annotations

import json
import logging
import os
import re
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple

from repro.api.request import SimulationRequest

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.api.jobs import JobEvent, JobHandle
    from repro.api.service import SimulationService

logger = logging.getLogger(__name__)

#: Bump when the record vocabulary changes incompatibly.
JOURNAL_FORMAT_VERSION = 1

#: The journal file inside a state dir.
JOURNAL_NAME = "journal.jsonl"

#: Tag added to resumed jobs so event consumers can tell them apart.
RESUMED_TAG = "resumed"


def result_digest(result: Any) -> str:
    """A stable content digest of one :class:`SimulationResult`."""
    from repro.pipeline.hashing import stable_digest

    return stable_digest("simulation-result", sorted(result.as_dict().items()))


@dataclass
class RecoveredJob:
    """One journaled job that had not reached a terminal state."""

    job_id: str
    requests: List[SimulationRequest]
    priority: int = 0
    tags: Tuple[str, ...] = ()
    #: request-JSON → result digest for every journaled completed point.
    completed: Dict[str, str] = field(default_factory=dict)

    @property
    def remaining(self) -> int:
        return max(0, len(self.requests) - len(self.completed))


class JobJournal:
    """The write-ahead journal of one ``--state-dir`` (open = recover)."""

    def __init__(self, state_dir: str) -> None:
        self.state_dir = state_dir
        os.makedirs(state_dir, exist_ok=True)
        self.path = os.path.join(state_dir, JOURNAL_NAME)
        self._lock = threading.Lock()
        #: Set during graceful shutdown: suppress ``cancelled`` terminal
        #: records so drained jobs stay pending and resume next start.
        self.draining = False
        #: Pending (interrupted) jobs found at open, for :func:`resume_jobs`.
        self.pending: List[RecoveredJob] = []
        #: Counters the scheduler restarts above, keeping ids/seqs monotonic.
        self.next_seq = 0
        self.next_job_number = 1
        self._recover()
        self._compact()
        self._file = open(self.path, "ab")

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    @staticmethod
    def read_records(path: str) -> Iterator[Dict[str, Any]]:
        """Every decodable record in ``path`` (torn/garbled lines skipped)."""
        if not os.path.exists(path):
            return
        with open(path, "rb") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    # A torn tail from a crash mid-append, or garbage; a
                    # fsync'd journal tears at most its last line.
                    logger.warning(
                        "journal %s: skipping undecodable line %d", path, line_number
                    )
                    continue
                if isinstance(record, dict):
                    yield record

    def _recover(self) -> None:
        jobs: Dict[str, RecoveredJob] = {}
        finished: Dict[str, str] = {}
        for record in self.read_records(self.path):
            kind = record.get("record")
            job_id = str(record.get("job", ""))
            try:
                if kind == "submit":
                    job = RecoveredJob(
                        job_id=job_id,
                        requests=[
                            SimulationRequest.from_dict(payload)
                            for payload in record.get("requests", ())
                        ],
                        priority=int(record.get("priority", 0)),
                        tags=tuple(record.get("tags", ())),
                    )
                    # A re-submit (journal resume writes one per restart)
                    # keeps the completed points recorded before it: they
                    # back the resume-is-only-the-remainder guarantee.
                    previous = jobs.get(job_id)
                    if previous is not None:
                        job.completed.update(previous.completed)
                    jobs[job_id] = job
                    # A fresh submit record supersedes any earlier terminal
                    # state (a resumed job reuses its id).
                    finished.pop(job_id, None)
                elif kind == "point" and job_id in jobs:
                    jobs[job_id].completed[
                        json.dumps(record.get("request"), sort_keys=True)
                    ] = str(record.get("digest", ""))
                elif kind == "state" and record.get("state") in (
                    "done",
                    "failed",
                    "cancelled",
                ):
                    finished[job_id] = str(record["state"])
            except (KeyError, TypeError, ValueError) as exc:
                logger.warning("journal %s: skipping bad %r record: %s", self.path, kind, exc)
                continue
            seq = record.get("seq")
            if isinstance(seq, int):
                self.next_seq = max(self.next_seq, seq + 1)
            match = re.match(r"job-(\d+)$", job_id)
            if match:
                self.next_job_number = max(self.next_job_number, int(match.group(1)) + 1)
        self.pending = [job for job_id, job in jobs.items() if job_id not in finished]

    def _compact(self) -> None:
        """Atomically rewrite the journal keeping only pending jobs' records."""
        if not os.path.exists(self.path):
            return
        temp = self.path + ".compact"
        with open(temp, "wb") as handle:
            for job in self.pending:
                handle.write(_encode(_submit_record(job.job_id, job.requests, job.priority, job.tags)))
                for request_json, digest in job.completed.items():
                    handle.write(
                        _encode(
                            {
                                "record": "point",
                                "job": job.job_id,
                                "kind": "cache-hit",
                                "request": json.loads(request_json),
                                "digest": digest,
                            }
                        )
                    )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.path)

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def _append(self, record: Dict[str, Any]) -> None:
        payload = _encode(record)
        with self._lock:
            if self._file.closed:  # pragma: no cover - post-close stragglers
                return
            self._file.write(payload)
            self._file.flush()
            os.fsync(self._file.fileno())

    def job_submitted(self, handle: "JobHandle") -> None:
        """Journal a submission: the WAL entry resume replays from."""
        self._append(
            _submit_record(handle.job_id, handle.requests, handle.priority, handle.tags)
        )

    def job_event(self, event: "JobEvent") -> None:
        """Journal the durable subset of the event stream.

        ``point-done``/``cache-hit`` become per-point completion records
        (with the result digest the scheduler put in the payload);
        ``done``/``failed`` become terminal state records; ``cancelled`` is
        terminal only when it was *requested*, not when the drain of a
        graceful shutdown induced it — drained jobs must stay pending.
        """
        payload = event.payload or {}
        if event.kind in ("point-done", "cache-hit"):
            self._append(
                {
                    "record": "point",
                    "job": event.job_id,
                    "kind": event.kind,
                    "seq": event.seq,
                    "request": event.request.as_dict() if event.request else None,
                    "cycles": payload.get("cycles"),
                    "digest": payload.get("digest", ""),
                }
            )
        elif event.kind in ("done", "failed") or (
            event.kind == "cancelled" and not self.draining
        ):
            record = {
                "record": "state",
                "job": event.job_id,
                "state": event.kind,
                "seq": event.seq,
            }
            if event.kind == "failed":
                record["error"] = payload.get("error")
            self._append(record)

    def checkpoint(self) -> None:
        """Mark a clean shutdown (pending jobs intentionally left pending)."""
        self._append({"record": "checkpoint", "version": JOURNAL_FORMAT_VERSION})

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()


def _encode(record: Dict[str, Any]) -> bytes:
    return (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")


def _submit_record(
    job_id: str,
    requests,
    priority: int,
    tags: Tuple[str, ...],
) -> Dict[str, Any]:
    return {
        "record": "submit",
        "version": JOURNAL_FORMAT_VERSION,
        "job": job_id,
        "priority": priority,
        "tags": list(tags),
        "requests": [request.as_dict() for request in requests],
    }


def resume_jobs(service: "SimulationService", journal: JobJournal) -> List["JobHandle"]:
    """Resubmit every pending journaled job under its original id.

    Completed points are served from the artifact disk cache (the resumed
    job observes them as ``cache-hit`` events); only the remainder executes.
    Returns the new handles, in journal order.
    """
    handles = []
    for job in journal.pending:
        tags = job.tags if RESUMED_TAG in job.tags else job.tags + (RESUMED_TAG,)
        handles.append(
            service.scheduler.submit(
                job.requests,
                priority=job.priority,
                tags=tags,
                job_id=job.job_id,
            )
        )
    return handles
