"""Jobs: the asynchronous unit of work the scheduler and the wire speak.

A *job* is one submitted request batch.  Callers get a :class:`JobHandle`
back immediately and observe the job through a stream of typed
:class:`JobEvent`\\ s — ``queued`` → ``prepared`` → per-point
``point-started`` / ``point-done`` / ``cache-hit`` → one terminal
``done`` / ``failed`` / ``cancelled`` — or just block on
:meth:`JobHandle.result`.  Events are JSON-round-trippable
(:meth:`JobEvent.as_dict` / :meth:`JobEvent.from_dict`), so the same
stream a local :class:`~repro.api.scheduler.Scheduler` emits in-process is
what ``repro serve`` forwards over a socket frame-for-frame.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from queue import Queue
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.api.request import SimulationRequest
from repro.api.results import ResultSet

#: Every event kind a job can emit, in rough lifecycle order.
EVENT_KINDS = (
    "queued",        # accepted by the scheduler (payload: points, priority, tags)
    "prepared",      # workload artifacts ready (payload: workloads)
    "point-started", # a pending point's batch was dispatched to the backend
    "point-done",    # a pending point finished computing (payload: cycles)
    "cache-hit",     # a point resolved from memo/disk/another job's execution
    "done",          # terminal: every point answered
    "failed",        # terminal: the job raised (payload: error)
    "cancelled",     # terminal: cancel() won the race (payload: completed)
)

#: Kinds that end a job's event stream.
TERMINAL_KINDS = frozenset({"done", "failed", "cancelled"})


class JobCancelled(RuntimeError):
    """Raised by :meth:`JobHandle.result` when the job was cancelled."""


@dataclass(frozen=True)
class JobEvent:
    """One observation of a job's progress (JSON-round-trippable)."""

    kind: str
    job_id: str
    seq: int
    request: Optional[SimulationRequest] = None
    payload: Optional[Dict[str, Any]] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "job": self.job_id,
            "seq": self.seq,
            "request": self.request.as_dict() if self.request is not None else None,
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobEvent":
        request = data.get("request")
        return cls(
            kind=data["kind"],
            job_id=data["job"],
            seq=data["seq"],
            request=SimulationRequest.from_dict(request) if request else None,
            payload=data.get("payload"),
        )

    @property
    def terminal(self) -> bool:
        return self.kind in TERMINAL_KINDS


class JobHandle:
    """The caller's view of one submitted job.

    Thread-safe: the scheduler's dispatcher appends events while any number
    of consumers iterate :meth:`events` (each gets the full history replayed
    and then the live tail) or block on :meth:`result`.
    """

    def __init__(
        self,
        job_id: str,
        requests: Sequence[SimulationRequest],
        priority: int = 0,
        tags: Tuple[str, ...] = (),
    ) -> None:
        self.job_id = job_id
        self.requests: Tuple[SimulationRequest, ...] = tuple(requests)
        self.priority = priority
        self.tags = tuple(tags)
        self.state = "queued"
        self._lock = threading.Lock()
        self._finished = threading.Event()
        self._history: List[JobEvent] = []
        self._subscribers: List[Queue] = []
        self._result: Optional[ResultSet] = None
        self._partial: Optional[ResultSet] = None
        self._error: Optional[BaseException] = None
        self._cancel_requested = False

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        """True once a terminal event (done/failed/cancelled) was emitted."""
        return self._finished.is_set()

    @property
    def cancel_requested(self) -> bool:
        return self._cancel_requested

    def events(self, after_seq: Optional[int] = None) -> Iterator[JobEvent]:
        """Stream this job's events: history so far, then live, then stop.

        The iterator ends after yielding the terminal event, so
        ``for event in handle.events()`` always terminates once the job
        does.  Safe to call from several threads; each caller gets its own
        complete stream.

        ``after_seq`` resumes a stream: events whose monotonic ``seq`` is at
        or below it are skipped (the caller already saw them), which is what
        lets a reconnecting remote client replay only the gap.  If the
        terminal event itself falls inside the skipped prefix the stream is
        simply empty.
        """
        queue: Queue = Queue()
        with self._lock:
            backlog = list(self._history)
            finished = bool(backlog) and backlog[-1].terminal
            if not finished:
                self._subscribers.append(queue)
        for event in backlog:
            if after_seq is not None and event.seq <= after_seq:
                if event.terminal:
                    return
                continue
            yield event
            if event.terminal:
                return
        if finished:
            return
        while True:
            event = queue.get()
            if after_seq is not None and event.seq <= after_seq:
                if event.terminal:
                    return
                continue
            yield event
            if event.terminal:
                return

    def history(self) -> List[JobEvent]:
        """A snapshot of every event emitted so far."""
        with self._lock:
            return list(self._history)

    def result(self, timeout: Optional[float] = None) -> ResultSet:
        """Block until the job finishes; return its :class:`ResultSet`.

        Raises the job's original exception if it failed,
        :class:`JobCancelled` if it was cancelled, and ``TimeoutError`` if
        ``timeout`` elapses first.
        """
        if not self._finished.wait(timeout):
            raise TimeoutError(
                f"job {self.job_id} still {self.state} after {timeout}s"
            )
        if self._error is not None:
            raise self._error
        if self.state == "cancelled":
            raise JobCancelled(f"job {self.job_id} was cancelled")
        assert self._result is not None
        return self._result

    def partial(self) -> ResultSet:
        """The points that completed before a cancel (empty otherwise)."""
        return self._partial if self._partial is not None else ResultSet()

    def cancel(self) -> bool:
        """Request cancellation.  Returns False when already finished.

        A queued job is cancelled by the scheduler before it starts; a
        running job stops at its next point-group boundary (completed points
        stay cached — see :meth:`partial`).
        """
        with self._lock:
            if self._finished.is_set():
                return False
            self._cancel_requested = True
        return True

    # ------------------------------------------------------------------ #
    # Scheduler side (package-internal)
    # ------------------------------------------------------------------ #
    def _emit(self, event: JobEvent, listeners: Sequence[Callable] = ()) -> None:
        with self._lock:
            self._history.append(event)
            subscribers = list(self._subscribers)
            if event.terminal:
                self._subscribers.clear()
        for queue in subscribers:
            queue.put(event)
        if event.terminal:
            # Set *after* the event is in the history so a consumer that
            # observes ``done`` (or returns from ``result()``) can always
            # find the terminal event in ``events()``/``history()``.
            self._finished.set()
        for listener in listeners:
            try:
                listener(event)
            except Exception:  # noqa: BLE001 - a listener must not kill a job
                pass

    def _finish(self, result: ResultSet) -> None:
        """Record success; the scheduler emits the ``done`` event next."""
        self.state = "done"
        self._result = result

    def _fail(self, error: BaseException) -> None:
        """Record failure; the scheduler emits the ``failed`` event next."""
        self.state = "failed"
        self._error = error

    def _mark_cancelled(self, partial: Optional[ResultSet] = None) -> None:
        """Record cancellation; the ``cancelled`` event follows."""
        self.state = "cancelled"
        self._partial = partial
