"""The uniform retry/timeout policy of the networked tier.

Before this module every remote layer carried its own ad-hoc knobs — a
hard-coded ``settimeout(10.0)`` in worker registration, a bare
``create_connection`` with no budget in the client, an events stream that
could block forever.  :class:`RetryPolicy` replaces them with one frozen,
explicit contract threaded through :class:`~repro.api.remote.RemoteServiceClient`,
:class:`~repro.api.remote.RemoteBackend`, and
:class:`~repro.api.remote.RemoteShardBackend`:

* **Bounded attempts** — ``max_attempts`` tries with exponential backoff
  (``base_delay * backoff**attempt``, capped at ``max_delay``).
* **Deterministic jitter** — the jitter fraction is derived from a hash of
  the attempt's ``token``, not ``random``: two runs of the same scenario
  back off identically, which is what makes the fault-injection suite
  reproducible.
* **Deadline** — an optional overall wall-clock budget across attempts; the
  last error is re-raised once it is spent.
* **Timeout defaults** — ``connect_timeout`` for dialing,
  ``io_timeout`` for individual reads on an established connection
  (``None`` = block), ``heartbeat_timeout`` for liveness pings.
* **Reconnection** — ``reconnect`` marks policies whose stream consumers
  (:class:`~repro.api.remote.RemoteJobHandle`) may transparently re-dial
  and resume from the last seen event ``seq`` instead of failing the sweep.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, replace
from typing import Callable, Optional, Tuple, Type, TypeVar

T = TypeVar("T")


class RetryError(ConnectionError):
    """Every attempt failed; carries the last underlying error as cause."""


@dataclass(frozen=True)
class RetryPolicy:
    """How a networked operation retries, backs off, and times out."""

    #: Attempts per operation (1 = no retry).
    max_attempts: int = 4
    #: Delay before the second attempt, in seconds.
    base_delay: float = 0.05
    #: Multiplier applied per subsequent attempt.
    backoff: float = 2.0
    #: Upper bound on any single delay.
    max_delay: float = 2.0
    #: Jitter fraction in [0, 1]: each delay is scaled by a deterministic
    #: factor in [1 - jitter, 1 + jitter] derived from the attempt token.
    jitter: float = 0.1
    #: Overall wall-clock budget across attempts (None = unbounded).
    deadline: Optional[float] = None
    #: Timeout for establishing a connection.
    connect_timeout: float = 10.0
    #: Default per-read timeout on established connections (None = block).
    io_timeout: Optional[float] = 120.0
    #: Timeout for liveness pings (heartbeats).
    heartbeat_timeout: float = 5.0
    #: Whether stream consumers may transparently reconnect and resume.
    reconnect: bool = True

    @classmethod
    def none(cls) -> "RetryPolicy":
        """The pre-policy behavior: one attempt, blocking I/O, no reconnect."""
        return cls(max_attempts=1, io_timeout=None, reconnect=False)

    def with_(self, **overrides) -> "RetryPolicy":
        """A copy with ``overrides`` applied (it's a frozen dataclass)."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------ #
    # Delay schedule
    # ------------------------------------------------------------------ #
    def delay(self, attempt: int, token: str = "") -> float:
        """The deterministic pause after failed attempt number ``attempt``.

        ``attempt`` counts from 0 (the delay before the *second* attempt).
        The jitter factor hashes ``token``/``attempt`` so distinct callers
        desynchronize while any single scenario replays identically.
        """
        base = min(self.base_delay * (self.backoff ** attempt), self.max_delay)
        if not self.jitter:
            return base
        digest = hashlib.sha256(f"{token}:{attempt}".encode("utf-8")).digest()
        unit = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF  # [0, 1]
        return max(0.0, base * (1.0 + self.jitter * (2.0 * unit - 1.0)))

    # ------------------------------------------------------------------ #
    # Driver
    # ------------------------------------------------------------------ #
    def call(
        self,
        attempt: Callable[[], T],
        retry_on: Tuple[Type[BaseException], ...] = (OSError,),
        token: str = "",
        sleep: Callable[[float], None] = time.sleep,
    ) -> T:
        """Run ``attempt`` under this policy; return its first success.

        Exceptions not in ``retry_on`` propagate immediately.  When every
        attempt fails (or the deadline is spent first) the last error is
        re-raised as-is, so callers keep their typed ``except`` clauses.
        """
        started = time.monotonic()
        last: Optional[BaseException] = None
        for index in range(max(1, self.max_attempts)):
            try:
                return attempt()
            except retry_on as exc:  # noqa: PERF203 - retry loop by design
                last = exc
                if index + 1 >= max(1, self.max_attempts):
                    break
                pause = self.delay(index, token=token)
                if self.deadline is not None:
                    remaining = self.deadline - (time.monotonic() - started)
                    if remaining <= pause:
                        break
                sleep(pause)
        assert last is not None
        raise last
