"""``repro.api`` — the declarative request surface over the whole stack.

Everything the paper's evaluation does is one sentence in this vocabulary:
*declare* the scenario cross-product, *run* it through a service, *query*
the typed results.  The same request objects drive the in-process serial
path, the fork fan-out, and the subprocess shard backend whose wire format
the future multi-host backend reuses.

A worked example — Cassandra vs the unsafe baseline on two workloads, with
the interrupt study's BTU-flush override riding along::

    from repro.api import ScenarioMatrix, SimulationService

    service = SimulationService(names=["ChaCha20_ct", "SHA-256"], jobs=4)
    matrix = ScenarioMatrix(
        designs=("unsafe-baseline", "cassandra"),
    ).extended(
        ScenarioMatrix(designs=("cassandra",), flush_intervals=(2_000,))
    )
    results = service.run(matrix)

    for workload, group in results.group_by("workload").items():
        slowdown = group.normalized_time("cassandra", btu_flush_interval=None)
        flushed = group.cycles(design="cassandra", btu_flush_interval=2_000)
        print(workload, slowdown, flushed)
    print(results.geomean_normalized_time("cassandra", btu_flush_interval=None))

The pieces:

* :class:`SimulationRequest` / :class:`WorkloadRef` — one frozen, hashable,
  JSON-round-trippable simulation point (workload × design ×
  :class:`CoreConfig` × BTU-flush × warm-up).
* :class:`ScenarioMatrix` — declarative cross-products with axis overrides,
  expanding to set-ordered unique request lists.
* :class:`SimulationService` — the facade wrapping the shared
  :class:`~repro.pipeline.pipeline.ExperimentPipeline`: prepares on demand,
  dispatches to a backend, answers with a :class:`ResultSet`.
* :class:`ExecutionBackend` — :class:`SerialBackend`,
  :class:`ForkPoolBackend`, :class:`SubprocessShardBackend`; all
  bit-identical, selectable via ``python -m repro --backend``.
* :class:`ResultSet` — query / group-by / normalized-time / geomean /
  export over (request, result) pairs, with a lossless
  :meth:`~ResultSet.to_wire`/:meth:`~ResultSet.from_wire` round trip.
* :class:`ExperimentContext` — the uniform object every registered
  experiment's ``run(ctx)`` receives.

Since the job redesign, ``service.run`` is a thin synchronous convenience
over job submission: ``service.submit(matrix, priority=5)`` answers
immediately with a :class:`JobHandle` streaming typed :class:`JobEvent`\\ s
(``queued`` / ``prepared`` / ``point-started`` / ``point-done`` /
``cache-hit`` / terminal), and the :class:`~repro.api.scheduler.Scheduler`
multiplexes any number of such jobs — deduplicating identical in-flight
points across them — over the one shared backend and artifact cache.  The
networked tier lives in :mod:`repro.api.remote`: ``repro serve`` exposes a
service over TCP, :class:`RemoteServiceClient`/:class:`RemoteBackend`
consume it, and :class:`RemoteShardBackend` ships the shard wire frames to
socket-registered workers.
"""

from repro.api.backends import (
    BACKENDS,
    ExecutionBackend,
    ForkPoolBackend,
    SerialBackend,
    SubprocessShardBackend,
    make_backend,
)
from repro.api.jobs import JobCancelled, JobEvent, JobHandle
from repro.api.journal import JobJournal, RecoveredJob, resume_jobs
from repro.api.matrix import EMPTY_MATRIX, ScenarioMatrix, expand_many
from repro.api.request import (
    REQUEST_FORMAT_VERSION,
    SimulationRequest,
    WorkloadRef,
)
from repro.api.results import ResultSet
from repro.api.retry import RetryError, RetryPolicy
from repro.api.scheduler import Scheduler
from repro.api.service import (
    ExperimentContext,
    SimulationService,
    build_service,
    default_context,
)
from repro.api.shard import ShardWorkerError

__all__ = [
    "BACKENDS",
    "EMPTY_MATRIX",
    "ExecutionBackend",
    "ExperimentContext",
    "ForkPoolBackend",
    "JobCancelled",
    "JobEvent",
    "JobHandle",
    "JobJournal",
    "REQUEST_FORMAT_VERSION",
    "RecoveredJob",
    "ResultSet",
    "RetryError",
    "RetryPolicy",
    "ScenarioMatrix",
    "Scheduler",
    "SerialBackend",
    "ShardWorkerError",
    "SimulationRequest",
    "SimulationService",
    "SubprocessShardBackend",
    "WorkloadRef",
    "build_service",
    "default_context",
    "expand_many",
    "make_backend",
    "resume_jobs",
]
