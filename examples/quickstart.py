#!/usr/bin/env python3
"""Quickstart: analyse and protect one cryptographic kernel with Cassandra.

The script walks through the full pipeline on the BearSSL-style ChaCha20
workload:

1. build the constant-time ISA kernel and check it against RFC 8439;
2. run the paper's branch analysis (Algorithm 2) to produce compressed
   branch traces and per-branch hints;
3. simulate the kernel on the out-of-order core under the unsafe baseline
   and under Cassandra, and compare cycles.

Run with::

    python examples/quickstart.py
"""

from repro.analysis import generate_trace_bundle
from repro.crypto.workloads import get_workload
from repro.uarch import simulate
from repro.uarch.defenses import CassandraPolicy, UnsafeBaseline


def main() -> None:
    # 1. Build and verify the workload.
    workload = get_workload("ChaCha20_ct")
    kernel = workload.kernel()
    result = kernel.run(0)
    print(f"workload          : {kernel.name} ({kernel.description})")
    print(f"correct output    : {kernel.verify(result)}")
    print(f"dynamic instrs    : {result.instruction_count}")
    print(f"static branches   : {len(kernel.program.static_branches())}")

    # 2. Branch analysis: record, compress, and package the sequential traces.
    bundle = generate_trace_bundle(kernel.program, kernel.inputs)
    counts = bundle.counts()
    print("\n--- branch analysis (Algorithm 2) ---")
    print(f"analysed branches : {counts['analyzed_branches']}")
    print(f"single-target     : {counts['single_target']}")
    print(f"with k-mers trace : {counts['with_trace']}")
    print(f"input dependent   : {counts['input_dependent']}")
    for pc, data in sorted(bundle.branches.items()):
        if data.kmers is None:
            continue
        print(
            f"  branch @ PC {pc:4d}: vanilla {len(data.vanilla):4d} elements"
            f" -> k-mers {data.kmers.size:3d}"
            f" (compression {data.kmers.compression_rate:6.1f}x)"
        )

    # 3. Timing simulation: unsafe baseline vs Cassandra.
    baseline = simulate(kernel.program, policy=UnsafeBaseline(), result=result)
    cassandra = simulate(
        kernel.program, policy=CassandraPolicy(bundle), bundle=bundle, result=result
    )
    print("\n--- timing simulation (Golden-Cove-like core) ---")
    print(f"unsafe baseline   : {baseline.cycles} cycles (IPC {baseline.ipc:.2f}, "
          f"{baseline.stats.bpu_mispredicted} mispredictions)")
    print(f"cassandra         : {cassandra.cycles} cycles (IPC {cassandra.ipc:.2f}, "
          f"{cassandra.stats.btu_replayed} BTU replays, 0 mispredictions)")
    delta = (1 - cassandra.cycles / baseline.cycles) * 100
    print(f"speedup           : {delta:.2f}% while enforcing sequential execution")


if __name__ == "__main__":
    main()
