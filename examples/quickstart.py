#!/usr/bin/env python3
"""Quickstart: analyse and protect one cryptographic kernel with Cassandra.

The script walks through the full stack on the BearSSL-style ChaCha20
workload, through the declarative ``repro.api`` surface:

1. build a :class:`SimulationService` over the shared, disk-cached
   pipeline and prepare the workload (build the constant-time ISA kernel,
   check it against RFC 8439, sequentially execute it, and run the paper's
   Algorithm 2 branch analysis) — all of which lands in the on-disk
   artifact cache, so a rerun of this script (or of ``python -m repro``)
   skips the heavy work entirely;
2. inspect the compressed branch traces and per-branch hints;
3. declare a two-design :class:`ScenarioMatrix`, run it, and compare the
   unsafe baseline against Cassandra through the typed :class:`ResultSet`.

Run with::

    python examples/quickstart.py

then run it again and watch the preparation time drop to the cache-load
cost.  ``python -m repro --list`` shows the full experiment suite that
shares the same service.
"""

import time

from repro.api import ScenarioMatrix, SimulationService
from repro.pipeline import ArtifactCache, default_cache_dir


def main() -> None:
    # 1. Prepare the workload through the shared, disk-cached service.
    service = SimulationService(
        names=["ChaCha20_ct"],
        cache=ArtifactCache(root=default_cache_dir()),
    )
    started = time.perf_counter()
    artifact = service.artifact("ChaCha20_ct")
    prepare_seconds = time.perf_counter() - started
    kernel, result = artifact.kernel, artifact.result
    cached = service.pipeline.cache.stats.hits > 0
    print(f"workload          : {kernel.name} ({kernel.description})")
    print(f"prepared in       : {prepare_seconds:.3f}s "
          f"({'warm artifact cache' if cached else 'cold: executed + traced'})")
    print(f"correct output    : {kernel.verify(result)}")
    print(f"dynamic instrs    : {result.instruction_count}")
    print(f"static branches   : {len(kernel.program.static_branches())}")

    # 2. Branch analysis: record, compress, and package the sequential traces.
    bundle = artifact.bundle
    counts = bundle.counts()
    print("\n--- branch analysis (Algorithm 2) ---")
    print(f"analysed branches : {counts['analyzed_branches']}")
    print(f"single-target     : {counts['single_target']}")
    print(f"with k-mers trace : {counts['with_trace']}")
    print(f"input dependent   : {counts['input_dependent']}")
    for pc, data in sorted(bundle.branches.items()):
        if data.kmers is None:
            continue
        print(
            f"  branch @ PC {pc:4d}: vanilla {len(data.vanilla):4d} elements"
            f" -> k-mers {data.kmers.size:3d}"
            f" (compression {data.kmers.compression_rate:6.1f}x)"
        )

    # 3. Timing simulation: one declarative matrix, one typed result set
    # (each point memoized and persisted in the same artifact cache).
    results = service.run(ScenarioMatrix(designs=("unsafe-baseline", "cassandra")))
    baseline = results.one(design="unsafe-baseline")
    cassandra = results.one(design="cassandra")
    print("\n--- timing simulation (Golden-Cove-like core) ---")
    print(f"unsafe baseline   : {baseline.cycles} cycles (IPC {baseline.ipc:.2f}, "
          f"{baseline.stats.bpu_mispredicted} mispredictions)")
    print(f"cassandra         : {cassandra.cycles} cycles (IPC {cassandra.ipc:.2f}, "
          f"{cassandra.stats.btu_replayed} BTU replays, 0 mispredictions)")
    delta = (1 - results.normalized_time("cassandra")) * 100
    print(f"speedup           : {delta:.2f}% while enforcing sequential execution")


if __name__ == "__main__":
    main()
