#!/usr/bin/env python3
"""Compare all defense design points across the benchmark suites.

Reproduces a slice of Figure 7 plus the Q3 (Cassandra-lite) and Q4 (BTU
flush) studies, printing normalized execution times for every design the
repository implements.  Pass workload names on the command line to pick a
different set, e.g.::

    python examples/defense_comparison.py AES_CTR kyber512 SHAKE

Equivalent to ``python -m repro figure7 cassandra-lite interrupts``; the
explicit api calls below show what the CLI does under the hood: one
:class:`SimulationService`, the union of the three experiments' scenario
matrices prefetched through the execution backend, then each experiment
rendering over warm memos via the shared :class:`ExperimentContext`.
"""

import sys

from repro.api import SimulationService, expand_many
from repro.experiments.cassandra_lite import (
    cassandra_lite_matrix,
    format_cassandra_lite,
    run_cassandra_lite,
)
from repro.experiments.figure7 import figure7_matrix, format_figure7, run_figure7, summarize_speedup
from repro.experiments.interrupts import (
    format_interrupt_study,
    interrupts_matrix,
    run_interrupt_study,
)
from repro.pipeline import ArtifactCache, default_cache_dir, default_jobs

DEFAULT_WORKLOADS = [
    "ChaCha20_ct",
    "SHA-256",
    "DES_ct",
    "EC_c25519_i31",
    "sha256",
    "sphincs-shake-128s",
]


def main() -> None:
    names = sys.argv[1:] or DEFAULT_WORKLOADS
    print(f"preparing workloads: {', '.join(names)}")
    service = SimulationService(
        names=names,
        cache=ArtifactCache(root=default_cache_dir()),
        jobs=default_jobs(),
    )
    ctx = service.context()

    # Fan the union of every point the three studies declare out over the
    # worker pool; the experiment bodies below then run over warm memos.
    ctx.run(
        expand_many(
            [figure7_matrix(), cassandra_lite_matrix(), interrupts_matrix()],
            default_workloads=service.workloads,
        )
    )

    print("\n=== Figure 7: normalized execution time ===")
    rows = run_figure7(ctx=ctx)
    print(format_figure7(rows))
    print(f"\nCassandra geomean speedup: {summarize_speedup(rows):.2f}% "
          f"(the paper reports 1.85% on full-size workloads)")

    print("\n=== Q3: Cassandra-lite (single-target branches only) ===")
    print(format_cassandra_lite(run_cassandra_lite(ctx=ctx)))

    print("\n=== Q4: flushing the BTU on context switches ===")
    print(format_interrupt_study(run_interrupt_study(ctx=ctx)))


if __name__ == "__main__":
    main()
