#!/usr/bin/env python3
"""Security demo: the paper's Listing 1 attack, with and without Cassandra.

A constant-time decryption loads a secret, runs a fixed number of decryption
rounds, declassifies the result, and only then transmits it.  A Spectre-style
adversary controls the branch predictor and makes the decryption loop's
branch mispredict so that the raw secret reaches the transmitter transiently.

The demo runs the attack against two machines — the unsafe speculative
baseline and the Cassandra semantics — and also evaluates the eight
control-flow scenarios of Table 2.

Run with::

    python examples/spectre_demo.py
"""

from repro.attacks import run_listing1_attack
from repro.experiments.table2 import format_table2, run_table2


def main() -> None:
    print("=== Listing 1: transient leak of an undecrypted secret ===")
    for mode in ("unsafe", "cassandra"):
        leaks = run_listing1_attack(mode=mode)
        verdict = "SECRET LEAKS" if leaks else "no leak"
        print(f"  {mode:10s}: {verdict}")
    print()
    print("=== Table 2: all control-flow scenarios (Figure 6) ===")
    print(format_table2(run_table2()))
    print()
    print("Scenarios 1-6 are blocked by Cassandra (BTU replay + integrity checks);")
    print("scenario 7 is harmless speculation; scenario 8 is the software-isolation")
    print("case the paper delegates to a sandboxing defense such as STT or DOLMA.")


if __name__ == "__main__":
    main()
