#!/usr/bin/env python3
"""A tour of the branch analysis on the paper's Toy-AES-2 style example.

Reproduces the flavour of Figure 2: collect raw traces per static branch,
aggregate them into vanilla (run-length encoded) traces, encode them as DNA
sequences, compress them with the k-mers technique, and lower the result to
the BTU's pattern/trace elements — then decompress and check the round trip.

Run with::

    python examples/branch_analysis_tour.py
"""

from repro.analysis import (
    build_hardware_trace,
    collect_raw_traces,
    compress_sequence,
    encode_vanilla_trace,
    to_vanilla_trace,
)
from repro.isa import ProgramBuilder


def build_toy_aes2():
    """Three encryption rounds over two blocks, as in the paper's example."""
    b = ProgramBuilder("toy-aes-2")
    key = b.alloc_secret("skey", [0x13, 0x57])
    out = b.alloc("ciphertext", 2)
    with b.crypto():
        with b.function("sbox") as sbox:
            b.xor("q", "q", 0x63)
            b.rotl("q", "q", 3)
        with b.function("encrypt") as encrypt:
            i = b.reg("round")
            with b.for_range(i, 0, 3):
                b.call(sbox)
            b.call(sbox)
        blk, addr = b.regs("blk", "addr")
        with b.for_range(blk, 0, 2):
            b.movi(addr, key)
            b.add(addr, addr, blk)
            b.load("q", addr)
            b.call(encrypt)
            b.declassify("q")
            b.movi(addr, out)
            b.add(addr, addr, blk)
            b.store("q", addr)
    b.halt()
    return b.build()


def main() -> None:
    program = build_toy_aes2()
    print(program.disassemble())
    print()

    raw_traces = collect_raw_traces(program)
    for pc, raw in sorted(raw_traces.items()):
        vanilla = to_vanilla_trace(raw)
        print(f"branch @ PC {pc} ({program.fetch(pc).opcode.value})")
        print(f"  raw trace     : {list(raw.targets)}")
        print(f"  vanilla trace : {[str(e) for e in vanilla.elements]}")
        if vanilla.is_single_target:
            print("  single-target : no BTU resources needed\n")
            continue
        sequence = encode_vanilla_trace(vanilla)
        print(f"  DNA sequence  : {sequence.to_string()}")
        kmers = compress_sequence(sequence)
        print(f"  k-mers trace  : {kmers.kmers_trace}")
        print(f"  pattern set   : "
              f"{{{', '.join(f'p{s}: {[str(e) for e in els]}' for s, els in kmers.pattern_set.items())}}}")
        hardware = build_hardware_trace(kmers)
        replay_ok = hardware.replay() == list(raw.targets)
        print(f"  BTU lowering  : {len(hardware.pattern_store)} pattern elements, "
              f"{hardware.trace_length} trace elements, short-trace={hardware.is_short_trace}")
        print(f"  replay == raw : {replay_ok}\n")


if __name__ == "__main__":
    main()
