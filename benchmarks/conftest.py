"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures on a reduced
but representative workload set (one or two workloads per suite), so the full
``pytest benchmarks/ --benchmark-only`` run completes in minutes.  The
benchmark bodies call the same experiment entry points a user would — every
one takes the uniform :class:`~repro.api.service.ExperimentContext` — and
the printed tables are the reproduced artefacts.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.api import SimulationService  # noqa: E402
from repro.pipeline import ArtifactCache, ExperimentPipeline, default_jobs  # noqa: E402

#: Workloads used by the benchmark harness: a slice of each suite.
BENCH_WORKLOADS = [
    "ChaCha20_ct",
    "SHA-256",
    "Poly1305_ctmul",
    "EC_c25519_i31",
    "DES_ct",
    "sha256",
    "sphincs-sha2-128s",
    "sphincs-haraka-128s",
]


@pytest.fixture(scope="session")
def bench_service():
    """The simulation service shared by all benchmarks (built once per session).

    Preparation goes through the shared pipeline: fan-out across CPU cores,
    and — when ``REPRO_CACHE_DIR`` points at a directory — the on-disk
    artifact cache, so repeated benchmark sessions skip straight to the
    timed experiment bodies.
    """
    cache_root = os.environ.get("REPRO_CACHE_DIR")
    cache = ArtifactCache(root=cache_root) if cache_root else None
    pipeline = ExperimentPipeline(names=BENCH_WORKLOADS, cache=cache, jobs=default_jobs())
    return SimulationService(pipeline)


@pytest.fixture(scope="session")
def bench_context(bench_service):
    """The uniform experiment context every benchmark body receives."""
    return bench_service.context()


@pytest.fixture(scope="session")
def bench_artifacts(bench_service):
    """Prepared workload artefacts, for benchmarks that read them directly."""
    return bench_service.artifacts()
