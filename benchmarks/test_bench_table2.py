"""Benchmark: regenerate Table 2 (security scenarios under both semantics)."""

from repro.experiments.table2 import format_table2, run_table2


def test_bench_table2(benchmark):
    results = benchmark(run_table2)
    print("\n=== Table 2: control-flow scenarios (leak = attacker distinguishes secrets) ===")
    print(format_table2(results))
    in_scope = [result for result in results if result.scenario <= 6]
    assert all(not result.leaks_cassandra for result in in_scope)
    assert any(result.leaks_unsafe for result in in_scope)
