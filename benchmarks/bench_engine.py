#!/usr/bin/env python
"""Benchmark the engine stack: legacy loop vs PR-2 interpreter vs kernels.

Times the *simulation phase* of the quick suite over the evaluation's point
product — every built-in design at one and two warm-up passes, plus the
interrupt study's BTU-flush point — three ways:

* **legacy** — the seed per-point path: the object-based reference loop
  (:meth:`CoreModel.run_reference`) with full per-policy warm-up passes;
* **engine** — the PR-2 columnar interpreter: one
  :func:`repro.engine.batch.simulate_batch` call per workload with
  ``REPRO_ENGINE_TIER=interp`` (shared lowering + component warm-up,
  measured passes on :func:`repro.engine.engine.run_trace`);
* **kernels** — the same batch call with the generated per-(policy × config)
  kernels active (flat-array state, residency proofs, static counters,
  measured-pass dedup).

A fourth timed phase, **service**, answers "what does the declarative
``repro.api`` layer cost?": the same per-workload point set expressed as
:class:`~repro.api.request.SimulationRequest` batches through a
:class:`~repro.api.service.SimulationService` with the serial backend
(memos cleared per repetition, kernels active).  Since the job redesign,
``service.run`` *is* a scheduler job, so this phase already pays the
submit → dispatch → result round trip.  The difference against the direct
``simulate_batch`` kernel phase is reported as
``service_overhead_seconds`` / ``service_overhead_pct`` and can be gated
with ``--max-service-overhead-pct`` (the CI bound asserts the facade adds
under 2%).

A fifth phase, **scheduler**, prices the full job machinery end to end:
``service.submit(...)`` with a live ``events()`` consumer draining every
typed :class:`~repro.api.jobs.JobEvent` (queued / prepared / per-point /
done) before ``result()``.  Its delta over the same direct kernel phase is
``scheduler_overhead_seconds`` / ``scheduler_overhead_pct``, gated with
``--max-scheduler-overhead-pct`` (CI: 2%) — streaming progress must stay
effectively free.

A sixth phase, **native**, times the same quick-suite point set under
``REPRO_ENGINE_TIER=native``: the generated C kernels compiled through the
system toolchain (:mod:`repro.engine.native`), artifact-cached as shared
objects so only the first-ever run pays the compiler.  Compilation happens
during the (untimed) parity pass — the same treatment the python kernels
get — so the timed phase measures steady-state execution; the compile cost
and artifact-cache hit split are reported as ``native_compile_seconds`` /
``native_cache_hits``.  The aggregate ``native_speedup`` (over the python
kernel phase) can be gated with ``--min-native-speedup``; the phase is
skipped with a note when no working C compiler exists, and the gate then
fails loudly rather than vacuously passing.

A seventh phase, **columns sweep**, measures what the NumPy columns tier is
*for*: a wide design-space sweep — ``SWEEP_DESIGNS`` × a
``SWEEP_CONFIGS``-point config grid over the axes the evaluation varies
(ROB size, pipeline widths, predictor geometry, penalties, forwarding
latency) — run per workload through ``simulate_batch`` under
``REPRO_ENGINE_TIER=columns`` and ``=python``.  The python tier pays its
per-(policy × config) kernel compiles inside the timing (the kernel cache
is cleared before every repetition): unlike the fixed quick-suite point
set above, a sweep's compile cost is O(configs) and cannot amortize, so
charging it is the honest end-to-end cost of answering a fresh sweep.
Both tiers' per-point stats are compared bit-for-bit (any diff is a
parity mismatch, same as the legacy paths), and the aggregate
``columns_speedup`` can be gated with ``--min-columns-speedup`` (the CI
bound asserts ≥2×).  Skipped with a note when NumPy is not installed.

Preparation (sequential execution + trace generation) is shared and
untimed, exactly as in the PR-2 protocol.  The columnar lowering — also
byte-identical shared input for the engine and kernel paths — is timed once
per workload and reported as ``lowering_seconds`` instead of being charged
to either path; kernel compilation happens during the (untimed) parity
pass and is a process-constant cost (``compile_count`` kernels).  All
three phases take the best of ``--repeat`` cold repetitions (each
repetition rebuilds warm state and re-simulates every point; only the
lowering memo persists), so every reported ratio compares like quantities.

The script verifies bit-for-bit parity across all three paths on every
point and **exits non-zero on any mismatch**, which is the CI gate; the
timing JSON (written to ``--output``) records both speedups::

    PYTHONPATH=src python benchmarks/bench_engine.py --output BENCH_engine.json
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.engine import kernels as kernels_module
from repro.engine import native as native_module
from repro.engine.batch import BatchStats, PointSpec, simulate_batch
from repro.engine.emit import columns as emit_columns
from repro.engine.kernels import KERNELS_ENV, TIER_ENV, clear_kernel_cache
from repro.experiments.interrupts import DEFAULT_FLUSH_INTERVAL
from repro.experiments.runner import DESIGN_BUILDERS, QUICK_WORKLOADS, prepare_workload
from repro.pipeline.artifacts import ArtifactCache
from repro.uarch.config import CoreConfig
from repro.uarch.core import CoreModel

#: Schema of the report (and of trajectory entries).  Bump on layout change.
BENCH_SCHEMA_VERSION = 6

ALL_DESIGNS = tuple(DESIGN_BUILDERS)

#: (design, btu_flush_interval, warmup_passes) simulation points per
#: workload: the full design set on the warm-up axis the evaluation sweeps,
#: plus the interrupt study's BTU-flush point.
POINTS: List[Tuple[str, Optional[int], int]] = (
    [(design, None, 1) for design in ALL_DESIGNS]
    + [("cassandra", DEFAULT_FLUSH_INTERVAL, 1)]
    + [(design, None, 2) for design in ALL_DESIGNS]
)

#: Designs the columns sweep runs per workload — one traced (cassandra) and
#: one gated-bpu (spt) policy, the two families the evaluation sweeps.
SWEEP_DESIGNS = ("cassandra", "spt")

#: The sweep's config grid: every axis the columns walk vectorizes, at the
#: ranges the evaluation varies.  Caches and BTU sizing stay at defaults so
#: the exactness proofs (residency, BTU capacity) hold on every quick-suite
#: trace and the whole grid is one cohort per design.
SWEEP_GRID = [
    CoreConfig(
        rob_size=rob,
        fetch_width=width,
        issue_width=width,
        commit_width=width,
        pht_bits=pht,
        global_history_bits=pht,
        mispredict_penalty=penalty,
        store_forward_latency=forward,
    )
    for rob, width, pht, penalty, forward in itertools.product(
        (512, 384, 300, 256), (8, 6, 4), (14, 12, 10), (13, 9), (1, 3)
    )
]
SWEEP_CONFIGS = len(SWEEP_GRID)


def run_legacy(artifact) -> Dict[tuple, Dict[str, object]]:
    results = {}
    for design, flush, warmups in POINTS:
        core = CoreModel(
            policy=DESIGN_BUILDERS[design](artifact.bundle),
            bundle=artifact.bundle,
            btu_flush_interval=flush,
        )
        for _ in range(warmups):
            core.run_reference(artifact.result.dynamic)
            core.reset_stats()
        results[(design, flush, warmups)] = core.run_reference(
            artifact.result.dynamic
        ).stats.as_dict()
    return results


def run_batch(
    artifact, tier: str, batch_stats: Optional[BatchStats] = None
) -> Dict[tuple, Dict[str, object]]:
    os.environ[TIER_ENV] = tier
    specs = [
        PointSpec(
            policy=DESIGN_BUILDERS[design](artifact.bundle),
            btu_flush_interval=flush,
            warmup_passes=warmups,
        )
        for design, flush, warmups in POINTS
    ]
    simulations = simulate_batch(
        artifact.result, artifact.bundle, specs, batch_stats=batch_stats
    )
    return {point: sim.stats.as_dict() for point, sim in zip(POINTS, simulations)}


def run_sweep(
    artifact, tier: str, batch_stats: Optional[BatchStats] = None
) -> Dict[tuple, Dict[str, object]]:
    """The design-space sweep: SWEEP_DESIGNS × SWEEP_GRID in one batch.

    Under ``tier="python"`` every (design, config) point compiles and runs
    its own generated kernel; under ``"columns"`` each design's grid runs
    as one NumPy cohort walk.  Results are keyed ``(design, index)`` so the
    two tiers' answers compare point-for-point.
    """
    os.environ[TIER_ENV] = tier
    specs = [
        PointSpec(policy=DESIGN_BUILDERS[design](artifact.bundle), config=config)
        for design in SWEEP_DESIGNS
        for config in SWEEP_GRID
    ]
    keys = [
        (design, index)
        for design in SWEEP_DESIGNS
        for index in range(SWEEP_CONFIGS)
    ]
    simulations = simulate_batch(
        artifact.result, artifact.bundle, specs, batch_stats=batch_stats
    )
    return {key: sim.stats.as_dict() for key, sim in zip(keys, simulations)}


def run_service(service, artifact) -> Dict[tuple, Dict[str, object]]:
    """The same point set through the declarative request surface.

    One :class:`SimulationRequest` batch per workload, serial backend,
    kernels active — so the delta against :func:`run_batch` in ``on`` mode
    is purely the api layer: request expansion, memo bookkeeping, and
    ResultSet assembly.
    """
    from repro.api import SimulationRequest

    os.environ[TIER_ENV] = "python"
    requests = [
        SimulationRequest(
            workload=artifact.name,
            design=design,
            btu_flush_interval=flush,
            warmup_passes=warmups,
        )
        for design, flush, warmups in POINTS
    ]
    results = service.run(requests)
    return {
        point: result.stats.as_dict()
        for point, (_request, result) in zip(POINTS, results)
    }


def run_scheduler(service, artifact) -> Dict[tuple, Dict[str, object]]:
    """The same point set as one scheduler job with a live event consumer.

    ``submit`` → drain ``events()`` (every queued / prepared /
    point-started / point-done frame) → ``result()``: the delta against
    :func:`run_batch` in ``on`` mode is the whole job-oriented machinery —
    queueing, dispatch threads, per-point event emission, and stream
    delivery.
    """
    from repro.api import SimulationRequest

    os.environ[TIER_ENV] = "python"
    requests = [
        SimulationRequest(
            workload=artifact.name,
            design=design,
            btu_flush_interval=flush,
            warmup_passes=warmups,
        )
        for design, flush, warmups in POINTS
    ]
    handle = service.submit(requests, tags=("bench",))
    events = 0
    for _event in handle.events():
        events += 1
    results = handle.result()
    assert events >= len(POINTS)  # at least one event per point arrived
    return {
        point: result.stats.as_dict()
        for point, (_request, result) in zip(POINTS, results)
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_engine.json", metavar="PATH")
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="artifact cache for preparation (cold on first run, warm after)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="cold repetitions per timed phase; the best is reported",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail unless the engine-over-legacy speedup reaches this (0 disables)",
    )
    parser.add_argument(
        "--min-kernel-speedup",
        type=float,
        default=0.0,
        help="fail unless the kernels-over-engine speedup reaches this (0 disables)",
    )
    parser.add_argument(
        "--max-service-overhead-pct",
        type=float,
        default=0.0,
        help="fail if the SimulationService layer adds more than this percent "
        "over calling simulate_batch directly (0 disables)",
    )
    parser.add_argument(
        "--max-scheduler-overhead-pct",
        type=float,
        default=0.0,
        help="fail if the job scheduler (submit + streamed events + result) "
        "adds more than this percent over calling simulate_batch directly "
        "(0 disables)",
    )
    parser.add_argument(
        "--min-native-speedup",
        type=float,
        default=0.0,
        help="fail unless the native-over-kernels speedup reaches this "
        "(0 disables; fails loudly if no C toolchain works)",
    )
    parser.add_argument(
        "--min-columns-speedup",
        type=float,
        default=0.0,
        help="fail unless the columns-over-python speedup on the sweep phase "
        "reaches this (0 disables; the phase is skipped without NumPy)",
    )
    parser.add_argument(
        "--trajectory",
        default=None,
        metavar="PATH",
        help="append a schema-versioned summary entry to this JSON list file",
    )
    args = parser.parse_args(argv)

    cache = ArtifactCache(root=args.cache_dir) if args.cache_dir else None
    repeat = max(args.repeat, 1)
    saved_mode = os.environ.get(KERNELS_ENV)
    saved_tier = os.environ.get(TIER_ENV)

    prepare_start = time.perf_counter()
    artifacts = [prepare_workload(name, cache=cache) for name in QUICK_WORKLOADS]
    prepare_seconds = time.perf_counter() - prepare_start

    # Verify three-way parity on every point; this pass also compiles
    # every kernel the suite needs, so the timed phases below measure the
    # steady state (compilation is a process-constant cost; its magnitude is
    # visible as ``compile_count`` kernels).
    parity_start = time.perf_counter()
    native_ok = native_module.compiler_available()
    mismatches = []
    for artifact in artifacts:
        legacy = run_legacy(artifact)
        engine = run_batch(artifact, "interp")
        kernels = run_batch(artifact, "python")
        others = [("engine", engine), ("kernels", kernels)]
        if native_ok:
            native_stats = BatchStats()
            others.append(("native", run_batch(artifact, "native", native_stats)))
            if native_stats.native_points != len(POINTS):
                mismatches.append(
                    {
                        "workload": artifact.name,
                        "path": "native",
                        "point": None,
                        "diffs": f"only {native_stats.native_points}/{len(POINTS)} "
                        f"points ran natively ({native_module.last_error})",
                    }
                )
        for point in POINTS:
            for other_name, other in others:
                if legacy[point] != other[point]:
                    diffs = {
                        key: (legacy[point][key], other[point][key])
                        for key in legacy[point]
                        if legacy[point][key] != other[point][key]
                    }
                    mismatches.append(
                        {
                            "workload": artifact.name,
                            "path": other_name,
                            "point": list(point),
                            "diffs": repr(diffs),
                        }
                    )
    parity_seconds = time.perf_counter() - parity_start

    # The service phase drives the same artifacts through the declarative
    # layer: adopt them into a pipeline (no re-preparation) behind a
    # serial-backend service, and clear the simulation memos before every
    # repetition so each run recomputes exactly what run_batch recomputes.
    from repro.api import SerialBackend, SimulationService
    from repro.pipeline.pipeline import ExperimentPipeline

    service_pipeline = ExperimentPipeline(names=[], cache=None, jobs=1)
    service_pipeline.adopt(artifacts)
    service = SimulationService(service_pipeline, backend=SerialBackend())

    per_workload = []
    legacy_total = engine_total = kernel_total = lowering_total = 0.0
    service_total = scheduler_total = native_total = 0.0
    for artifact in artifacts:
        # The lowering is byte-identical shared input for both batch paths:
        # timed once, then left memoized for the phase timings below.
        if hasattr(artifact.result, "_lowered_trace"):
            del artifact.result._lowered_trace
        start = time.perf_counter()
        from repro.engine.lowering import lower_execution

        lower_execution(artifact.result)
        lowering_seconds = time.perf_counter() - start

        legacy_seconds = min(
            _timed(lambda: run_legacy(artifact)) for _ in range(repeat)
        )
        engine_seconds = min(
            _timed(lambda: run_batch(artifact, "interp")) for _ in range(repeat)
        )
        # The kernel, service, and scheduler phases are interleaved within
        # each repetition: the service/scheduler overheads are small
        # differences between large timings, so the pair being compared
        # must see the same machine conditions — separate back-to-back
        # phase loops made the 2% gates hostage to scheduler/thermal noise.
        # The artifact-level disk cache is detached for the duration so a
        # --cache-dir run does not short-circuit the comparison.
        saved_cache = artifact.cache
        artifact.cache = None
        kernel_seconds = inner_kernel = None
        native_seconds = inner_native = None
        service_runs = []
        scheduler_runs = []
        try:
            for _ in range(repeat):
                batch_stats = BatchStats()
                elapsed = _timed(lambda: run_batch(artifact, "python", batch_stats))
                if kernel_seconds is None or elapsed < kernel_seconds:
                    kernel_seconds = elapsed
                    inner_kernel = batch_stats
                if native_ok:
                    # Interleaved with the kernel phase for the same reason
                    # the service/scheduler pairs are: native_speedup is a
                    # ratio of these two timings.
                    native_stats = BatchStats()
                    elapsed = _timed(
                        lambda: run_batch(artifact, "native", native_stats)
                    )
                    if native_seconds is None or elapsed < native_seconds:
                        native_seconds = elapsed
                        inner_native = native_stats
                artifact.simulations.clear()
                service_runs.append(_timed(lambda: run_service(service, artifact)))
                artifact.simulations.clear()
                scheduler_runs.append(
                    _timed(lambda: run_scheduler(service, artifact))
                )
                artifact.simulations.clear()
            service_seconds = min(service_runs)
            scheduler_seconds = min(scheduler_runs)
        finally:
            artifact.cache = saved_cache
            artifact.simulations.clear()
        assert kernel_seconds is not None and inner_kernel is not None

        legacy_total += legacy_seconds
        engine_total += engine_seconds
        kernel_total += kernel_seconds
        if native_seconds is not None:
            native_total += native_seconds
        service_total += service_seconds
        scheduler_total += scheduler_seconds
        lowering_total += lowering_seconds
        per_workload.append(
            {
                "workload": artifact.name,
                "instructions": len(artifact.result.dynamic),
                "points": len(POINTS),
                "lowering_seconds": round(lowering_seconds, 4),
                "legacy_seconds": round(legacy_seconds, 4),
                "engine_seconds": round(engine_seconds, 4),
                "kernel_seconds": round(kernel_seconds, 4),
                "native_seconds": round(native_seconds, 4)
                if native_seconds is not None
                else None,
                "native_speedup": round(kernel_seconds / native_seconds, 2)
                if native_seconds
                else None,
                "native_batch": inner_native.as_dict() if inner_native else None,
                "service_seconds": round(service_seconds, 4),
                "scheduler_seconds": round(scheduler_seconds, 4),
                # What the declarative request layer adds on top of the
                # direct simulate_batch call for the same points.
                "service_overhead_seconds": round(
                    max(service_seconds - kernel_seconds, 0.0), 4
                ),
                # What the full job machinery (submit, dispatch, streamed
                # per-point events, result assembly) adds on top of it.
                "scheduler_overhead_seconds": round(
                    max(scheduler_seconds - kernel_seconds, 0.0), 4
                ),
                # The kernel path's time outside generated-kernel execution:
                # warm-state restores, shared column/plan construction,
                # result assembly.  This is the short-trace overhead floor
                # the batch amortizes across its points.
                "overhead_seconds": round(
                    max(kernel_seconds - inner_kernel.kernel_seconds, 0.0), 4
                ),
                "speedup": round(legacy_seconds / engine_seconds, 2)
                if engine_seconds
                else None,
                "kernel_speedup": round(engine_seconds / kernel_seconds, 2)
                if kernel_seconds
                else None,
                "batch": inner_kernel.as_dict(),
            }
        )

    # The columns sweep: SWEEP_DESIGNS × SWEEP_GRID per workload, generated
    # python kernels vs the NumPy cohort walk.  The python tier's kernel
    # cache is cleared before every repetition — a fresh sweep compiles one
    # kernel per (design, config), and that O(configs) cost is exactly what
    # the columns tier amortizes away — so each timing is the end-to-end
    # cost of answering the sweep on that tier.
    compile_count = kernels_module.compile_count
    columns_ok = emit_columns.columns_available()
    sweep_per_workload = []
    sweep_python_total = sweep_columns_total = 0.0
    sweep_compiles = 0
    if columns_ok:
        for artifact in artifacts:
            python_seconds = columns_seconds = None
            python_answers = columns_answers = columns_stats = None
            for _ in range(repeat):
                clear_kernel_cache()
                before = kernels_module.compile_count
                start = time.perf_counter()
                answers = run_sweep(artifact, "python")
                elapsed = time.perf_counter() - start
                if python_seconds is None or elapsed < python_seconds:
                    python_seconds, python_answers = elapsed, answers
                    sweep_compiles = kernels_module.compile_count - before
            for _ in range(repeat):
                stats = BatchStats()
                start = time.perf_counter()
                answers = run_sweep(artifact, "columns", stats)
                elapsed = time.perf_counter() - start
                if columns_seconds is None or elapsed < columns_seconds:
                    columns_seconds = elapsed
                    columns_answers, columns_stats = answers, stats
            for key, expected in python_answers.items():
                if expected != columns_answers[key]:
                    diffs = {
                        field: (expected[field], columns_answers[key][field])
                        for field in expected
                        if expected[field] != columns_answers[key][field]
                    }
                    mismatches.append(
                        {
                            "workload": artifact.name,
                            "path": "columns",
                            "point": list(key),
                            "diffs": repr(diffs),
                        }
                    )
            sweep_python_total += python_seconds
            sweep_columns_total += columns_seconds
            sweep_per_workload.append(
                {
                    "workload": artifact.name,
                    "points": len(SWEEP_DESIGNS) * SWEEP_CONFIGS,
                    "python_seconds": round(python_seconds, 4),
                    "columns_seconds": round(columns_seconds, 4),
                    "columns_speedup": round(python_seconds / columns_seconds, 2)
                    if columns_seconds
                    else None,
                    # How much of the batch the cohort walks actually covered
                    # (the rest fell back to per-point python kernels).
                    "columns_points": columns_stats.columns_points,
                    "columns_cohorts": columns_stats.columns_cohorts,
                    "walk_seconds": round(columns_stats.columns_seconds, 4),
                }
            )
    columns_speedup = (
        sweep_python_total / sweep_columns_total if sweep_columns_total else 0.0
    )

    if saved_mode is None:
        os.environ.pop(KERNELS_ENV, None)
    else:
        os.environ[KERNELS_ENV] = saved_mode
    if saved_tier is None:
        os.environ.pop(TIER_ENV, None)
    else:
        os.environ[TIER_ENV] = saved_tier

    speedup = legacy_total / engine_total if engine_total else 0.0
    kernel_speedup = engine_total / kernel_total if kernel_total else 0.0
    native_speedup = kernel_total / native_total if native_total else 0.0
    service_overhead = max(service_total - kernel_total, 0.0)
    service_overhead_pct = (
        service_overhead / kernel_total * 100.0 if kernel_total else 0.0
    )
    scheduler_overhead = max(scheduler_total - kernel_total, 0.0)
    scheduler_overhead_pct = (
        scheduler_overhead / kernel_total * 100.0 if kernel_total else 0.0
    )
    report = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "suite": "quick",
        "workloads": list(QUICK_WORKLOADS),
        "points_per_workload": len(POINTS),
        "repeat": repeat,
        "prepare_seconds": round(prepare_seconds, 3),
        "prepare_cache": "warm"
        if cache is not None and cache.stats.hits
        else ("cold" if cache is not None else "uncached"),
        "compile_count": compile_count,
        "parity_check_seconds": round(parity_seconds, 3),
        "lowering_seconds": round(lowering_total, 3),
        "legacy_seconds": round(legacy_total, 3),
        "engine_seconds": round(engine_total, 3),
        "kernel_seconds": round(kernel_total, 3),
        # The native phase (absent numbers mean no working C toolchain).
        "native_available": native_ok,
        "native_seconds": round(native_total, 3) if native_ok else None,
        "native_speedup": round(native_speedup, 2) if native_ok else None,
        "native_compile_count": native_module.compile_count,
        "native_compile_seconds": round(native_module.compile_seconds, 3),
        "native_cache_hits": native_module.cache_hits,
        "service_seconds": round(service_total, 3),
        "scheduler_seconds": round(scheduler_total, 3),
        "service_overhead_seconds": round(service_overhead, 4),
        "service_overhead_pct": round(service_overhead_pct, 2),
        "scheduler_overhead_seconds": round(scheduler_overhead, 4),
        "scheduler_overhead_pct": round(scheduler_overhead_pct, 2),
        "speedup": round(speedup, 2),
        "kernel_speedup": round(kernel_speedup, 2),
        # The columns sweep phase (absent numbers mean NumPy is missing).
        "sweep_available": columns_ok,
        "sweep_designs": list(SWEEP_DESIGNS),
        "sweep_configs": SWEEP_CONFIGS,
        "sweep_compiles_per_run": sweep_compiles,
        "sweep_python_seconds": round(sweep_python_total, 3),
        "sweep_columns_seconds": round(sweep_columns_total, 3),
        "columns_speedup": round(columns_speedup, 2) if columns_ok else None,
        "sweep_per_workload": sweep_per_workload,
        "parity": "ok" if not mismatches else "MISMATCH",
        "mismatches": mismatches,
        "per_workload": per_workload,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    if args.trajectory:
        entry = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "legacy_seconds": report["legacy_seconds"],
            "engine_seconds": report["engine_seconds"],
            "kernel_seconds": report["kernel_seconds"],
            "native_seconds": report["native_seconds"],
            "native_speedup": report["native_speedup"],
            "service_seconds": report["service_seconds"],
            "scheduler_seconds": report["scheduler_seconds"],
            "service_overhead_pct": report["service_overhead_pct"],
            "scheduler_overhead_pct": report["scheduler_overhead_pct"],
            "speedup": report["speedup"],
            "kernel_speedup": report["kernel_speedup"],
            "sweep_python_seconds": report["sweep_python_seconds"],
            "sweep_columns_seconds": report["sweep_columns_seconds"],
            "columns_speedup": report["columns_speedup"],
            "parity": report["parity"],
        }
        trajectory = []
        if os.path.exists(args.trajectory):
            with open(args.trajectory) as handle:
                trajectory = json.load(handle)
            if not isinstance(trajectory, list):
                raise SystemExit(f"{args.trajectory} is not a JSON list")
        trajectory.append(entry)
        with open(args.trajectory, "w") as handle:
            json.dump(trajectory, handle, indent=2)
            handle.write("\n")

    sweep_line = (
        f"columns-sweep {sweep_columns_total:.2f}s vs {sweep_python_total:.2f}s "
        f"({columns_speedup:.2f}x)"
        if columns_ok
        else "columns-sweep skipped (no NumPy)"
    )
    native_line = (
        f"native {native_total:.2f}s ({native_speedup:.2f}x)"
        if native_ok
        else "native skipped (no C toolchain)"
    )
    print(
        f"legacy {legacy_total:.2f}s  engine {engine_total:.2f}s  "
        f"kernels {kernel_total:.2f}s  {native_line}  service {service_total:.2f}s "
        f"(+{service_overhead_pct:.2f}%)  scheduler {scheduler_total:.2f}s "
        f"(+{scheduler_overhead_pct:.2f}%)  engine-speedup {speedup:.2f}x  "
        f"kernel-speedup {kernel_speedup:.2f}x  {sweep_line}  "
        f"parity {'ok' if not mismatches else 'MISMATCH'}"
    )
    if mismatches:
        print(f"{len(mismatches)} parity mismatch(es); see {args.output}", file=sys.stderr)
        return 1
    if args.min_speedup and speedup < args.min_speedup:
        print(
            f"engine speedup {speedup:.2f}x below required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    if args.min_kernel_speedup and kernel_speedup < args.min_kernel_speedup:
        print(
            f"kernel speedup {kernel_speedup:.2f}x below required "
            f"{args.min_kernel_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    if args.min_native_speedup:
        if not native_ok:
            print(
                "native tier unavailable (no working C toolchain) but "
                "--min-native-speedup was requested",
                file=sys.stderr,
            )
            return 1
        if native_speedup < args.min_native_speedup:
            print(
                f"native speedup {native_speedup:.2f}x below required "
                f"{args.min_native_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    if args.min_columns_speedup:
        if not columns_ok:
            print(
                "columns sweep unavailable (NumPy not installed) but "
                "--min-columns-speedup was requested",
                file=sys.stderr,
            )
            return 1
        if columns_speedup < args.min_columns_speedup:
            print(
                f"columns speedup {columns_speedup:.2f}x below required "
                f"{args.min_columns_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    if (
        args.max_service_overhead_pct
        and service_overhead_pct > args.max_service_overhead_pct
    ):
        print(
            f"service overhead {service_overhead_pct:.2f}% above allowed "
            f"{args.max_service_overhead_pct:.2f}%",
            file=sys.stderr,
        )
        return 1
    if (
        args.max_scheduler_overhead_pct
        and scheduler_overhead_pct > args.max_scheduler_overhead_pct
    ):
        print(
            f"scheduler overhead {scheduler_overhead_pct:.2f}% above allowed "
            f"{args.max_scheduler_overhead_pct:.2f}%",
            file=sys.stderr,
        )
        return 1
    return 0


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


if __name__ == "__main__":
    sys.exit(main())
