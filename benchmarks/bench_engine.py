#!/usr/bin/env python
"""Benchmark the columnar engine against the legacy per-point path.

Times the *simulation phase* of the quick suite — every built-in design on
every quick workload, plus the interrupt study's BTU-flush point — two ways:

* **legacy** — the seed per-point path: the object-based reference loop
  (:meth:`CoreModel.run_reference`) with a full warm-up pass per policy;
* **engine** — one :func:`repro.engine.batch.simulate_batch` call per
  workload sharing the columnar lowering and the warm-up component state.

Both paths run cold (no simulation memos); preparation (sequential execution
+ trace generation) is shared and excluded from the timed region, since it
is identical for both.  The script verifies bit-for-bit parity between the
two paths and **exits non-zero on any mismatch**, which is the CI gate; the
timing JSON (written to ``--output``) records the speedup::

    PYTHONPATH=src python benchmarks/bench_engine.py --output BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro.engine.batch import BatchStats, PointSpec, simulate_batch
from repro.experiments.interrupts import DEFAULT_FLUSH_INTERVAL
from repro.experiments.runner import DESIGN_BUILDERS, QUICK_WORKLOADS, prepare_workload
from repro.pipeline.artifacts import ArtifactCache
from repro.uarch.core import CoreModel

ALL_DESIGNS = tuple(DESIGN_BUILDERS)

#: (design, btu_flush_interval) simulation points per workload.
POINTS = [(design, None) for design in ALL_DESIGNS] + [
    ("cassandra", DEFAULT_FLUSH_INTERVAL)
]


def run_legacy(artifact) -> Dict[tuple, Dict[str, object]]:
    results = {}
    for design, flush in POINTS:
        core = CoreModel(
            policy=DESIGN_BUILDERS[design](artifact.bundle),
            bundle=artifact.bundle,
            btu_flush_interval=flush,
        )
        core.run_reference(artifact.result.dynamic)
        core.reset_stats()
        results[(design, flush)] = core.run_reference(artifact.result.dynamic).stats.as_dict()
    return results


def run_engine(artifact, batch_stats: BatchStats) -> Dict[tuple, Dict[str, object]]:
    specs = [
        PointSpec(policy=DESIGN_BUILDERS[design](artifact.bundle), btu_flush_interval=flush)
        for design, flush in POINTS
    ]
    simulations = simulate_batch(
        artifact.result, artifact.bundle, specs, batch_stats=batch_stats
    )
    return {point: sim.stats.as_dict() for point, sim in zip(POINTS, simulations)}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_engine.json", metavar="PATH")
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="artifact cache for preparation (cold on first run, warm after)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail unless engine speedup reaches this factor (0 disables)",
    )
    args = parser.parse_args(argv)

    cache = ArtifactCache(root=args.cache_dir) if args.cache_dir else None

    prepare_start = time.perf_counter()
    artifacts = [prepare_workload(name, cache=cache) for name in QUICK_WORKLOADS]
    prepare_seconds = time.perf_counter() - prepare_start

    per_workload = []
    mismatches = []
    legacy_total = engine_total = 0.0
    for artifact in artifacts:
        start = time.perf_counter()
        legacy = run_legacy(artifact)
        legacy_seconds = time.perf_counter() - start

        # Cold engine run: drop the lowering memo so the batch pays for it.
        if hasattr(artifact.result, "_lowered_trace"):
            del artifact.result._lowered_trace
        batch_stats = BatchStats()
        start = time.perf_counter()
        engine = run_engine(artifact, batch_stats)
        engine_seconds = time.perf_counter() - start

        for point in POINTS:
            if legacy[point] != engine[point]:
                diffs = {
                    key: (legacy[point][key], engine[point][key])
                    for key in legacy[point]
                    if legacy[point][key] != engine[point][key]
                }
                mismatches.append({"workload": artifact.name, "point": list(point), "diffs": repr(diffs)})

        legacy_total += legacy_seconds
        engine_total += engine_seconds
        per_workload.append(
            {
                "workload": artifact.name,
                "instructions": len(artifact.result.dynamic),
                "points": len(POINTS),
                "legacy_seconds": round(legacy_seconds, 4),
                "engine_seconds": round(engine_seconds, 4),
                "speedup": round(legacy_seconds / engine_seconds, 2)
                if engine_seconds
                else None,
                "batch": batch_stats.as_dict(),
            }
        )

    speedup = legacy_total / engine_total if engine_total else 0.0
    report = {
        "suite": "quick",
        "workloads": list(QUICK_WORKLOADS),
        "points_per_workload": len(POINTS),
        "prepare_seconds": round(prepare_seconds, 3),
        "prepare_cache": "warm" if cache is not None and cache.stats.hits else (
            "cold" if cache is not None else "uncached"
        ),
        "legacy_seconds": round(legacy_total, 3),
        "engine_seconds": round(engine_total, 3),
        "speedup": round(speedup, 2),
        "parity": "ok" if not mismatches else "MISMATCH",
        "mismatches": mismatches,
        "per_workload": per_workload,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(
        f"legacy {legacy_total:.2f}s  engine {engine_total:.2f}s  "
        f"speedup {speedup:.2f}x  parity {'ok' if not mismatches else 'MISMATCH'}"
    )
    if mismatches:
        print(f"{len(mismatches)} parity mismatch(es); see {args.output}", file=sys.stderr)
        return 1
    if args.min_speedup and speedup < args.min_speedup:
        print(
            f"speedup {speedup:.2f}x below required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
