"""Benchmark: regenerate Figure 8 (ProSpeCT vs Cassandra+ProSpeCT mixes)."""

from repro.experiments.figure8 import format_figure8, run_figure8


def test_bench_figure8(benchmark, bench_context):
    # The synthetic mixes are matrix-pinned workloads: the shared service
    # prepares and caches them alongside the registry artifacts.
    rows = benchmark.pedantic(
        run_figure8, kwargs={"ctx": bench_context}, rounds=1, iterations=1
    )
    print("\n=== Figure 8: synthetic sandbox/crypto mixes (overhead %, lower is better) ===")
    print(format_figure8(rows))
    assert len(rows) == 10  # 2 primitives x 5 mix points
    for row in rows:
        assert -15.0 < float(row["prospect"]) < 75.0
        assert -15.0 < float(row["cassandra+prospect"]) < 75.0
