"""Benchmark: regenerate Figure 9 (power and area relative to the baseline)."""

from repro.experiments.figure9 import (
    btu_area_percent,
    format_figure9,
    power_reduction_percent,
    run_figure9,
)


def test_bench_figure9(benchmark, bench_context):
    report = benchmark(run_figure9, ctx=bench_context)
    print("\n=== Figure 9: power and area normalized to the unsafe baseline ===")
    print(format_figure9(report))
    reduction = power_reduction_percent(report)
    area = btu_area_percent(report)
    print(f"\nCassandra power reduction: {reduction:.2f}% (paper: 2.73%)")
    print(f"BTU area overhead: {area:.2f}% (paper: 1.26%)")
    assert reduction > 0.0
    assert abs(area - 1.26) < 0.05
