"""Benchmark: regenerate Table 1 (branch analysis and trace compression)."""

from repro.experiments.table1 import format_table1, run_table1


def test_bench_table1(benchmark, bench_context):
    rows = benchmark(run_table1, ctx=bench_context, invocations=128)
    print("\n=== Table 1: branch analysis of cryptographic programs ===")
    print(format_table1(rows))
    all_row = rows[-1]
    assert all_row["compression_avg"] > 10, "k-mers compression must be substantial"
    assert all_row["kmers_avg"] < all_row["vanilla_avg"]
