"""Benchmark: regenerate the Q4 BTU-flush (interrupt) study (Section 8)."""

from repro.experiments.interrupts import format_interrupt_study, run_interrupt_study


def test_bench_interrupts(benchmark, bench_context):
    rows = benchmark.pedantic(
        run_interrupt_study, kwargs={"ctx": bench_context}, rounds=1, iterations=1
    )
    print("\n=== Q4: periodic BTU flushes (context switches between crypto apps) ===")
    print(format_interrupt_study(rows))
    geomean = rows[-1]
    # Flushing costs at most a small amount on top of Cassandra (paper: 1.85% -> 1.80%).
    assert float(geomean["cassandra+flush"]) >= float(geomean["cassandra"]) - 1e-9
    assert float(geomean["cassandra+flush"]) <= float(geomean["cassandra"]) * 1.10
