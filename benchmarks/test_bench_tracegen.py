"""Benchmark: the upfront trace-generation runtime (Section 7.5)."""

from repro.analysis.tracegen import generate_trace_bundle
from repro.crypto.workloads import get_workload
from repro.experiments.trace_runtime import format_trace_runtime, run_trace_runtime


def test_bench_tracegen_runtime_breakdown(benchmark, bench_context):
    rows = benchmark.pedantic(
        run_trace_runtime, kwargs={"ctx": bench_context}, rounds=1, iterations=1
    )
    print("\n=== Section 7.5: trace-generation runtime per step (seconds) ===")
    print(format_trace_runtime(rows))
    assert all(row["E_kmers_compression"] >= 0 for row in rows)


def test_bench_tracegen_single_workload(benchmark):
    """Micro-benchmark Algorithm 2 end to end on one workload."""
    kernel = get_workload("SHA-256").kernel()
    bundle = benchmark(generate_trace_bundle, kernel.program, kernel.inputs)
    assert bundle.hardware_traces()
