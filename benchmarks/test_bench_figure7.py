"""Benchmark: regenerate Figure 7 (normalized execution time of the designs)."""

from repro.experiments.figure7 import format_figure7, run_figure7, summarize_speedup


def test_bench_figure7(benchmark, bench_context):
    rows = benchmark.pedantic(
        run_figure7, kwargs={"ctx": bench_context}, rounds=1, iterations=1
    )
    print("\n=== Figure 7: execution time normalized to the unsafe baseline ===")
    print(format_figure7(rows))
    speedup = summarize_speedup(rows)
    print(f"\nCassandra geomean speedup over the unsafe baseline: {speedup:.2f}%")
    geomean = rows[-1]
    assert geomean["cassandra"] <= 1.0, "Cassandra must not slow the geomean down"
    assert geomean["spt"] >= 1.0, "SPT must not speed the geomean up"
    assert geomean["cassandra"] <= geomean["spt"]
