"""Benchmark: regenerate the Q3 Cassandra-lite comparison (Section 8)."""

from repro.experiments.cassandra_lite import format_cassandra_lite, run_cassandra_lite


def test_bench_cassandra_lite(benchmark, bench_context):
    rows = benchmark.pedantic(
        run_cassandra_lite, kwargs={"ctx": bench_context}, rounds=1, iterations=1
    )
    print("\n=== Q3: Cassandra-lite vs Cassandra (normalized to the unsafe baseline) ===")
    print(format_cassandra_lite(rows))
    geomeans = [row for row in rows if str(row["workload"]).startswith("geomean")]
    assert geomeans
    assert all(float(row["lite_over_cassandra"]) >= 1.0 for row in geomeans)
