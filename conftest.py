"""Repository-level pytest configuration.

Ensures the ``src`` layout is importable even when the package has not been
installed (useful on minimal offline environments); when ``repro`` is already
installed the editable install takes precedence and this is a no-op.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
