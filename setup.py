"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so that ``pip install -e .`` also works on minimal offline environments where
the ``wheel`` package (required for PEP 660 editable installs) is not
available — pip falls back to the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
