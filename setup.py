"""Package metadata for minimal offline environments.

There is deliberately no ``pyproject.toml``: the target environments are
offline machines where pip's PEP 517/660 paths (which need the ``wheel``
package) are not always available, so everything lives in the legacy
``setup.py`` that ``pip install -e .`` can always fall back to.

The project has **zero required dependencies** — every experiment and the
whole engine stack run on the standard library.  The one optional extra::

    pip install -e .[columns]

pulls in NumPy for the engine's *columns* tier (``REPRO_ENGINE_TIER=columns``,
the default), which vectorizes the measured pass across whole config sweeps.
Without it the engine degrades silently to the generated per-config python
kernels — identical results, sweep-scaling speed left on the table.
"""

from setuptools import find_packages, setup

from pathlib import Path

_version = "0.0.0"
for _line in (Path(__file__).parent / "src" / "repro" / "__init__.py").read_text().splitlines():
    if _line.startswith("__version__"):
        _version = _line.split("=")[1].strip().strip("\"'")
        break

setup(
    name="repro",
    version=_version,
    description="Reproduction of the paper's microarchitectural evaluation",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[],
    extras_require={"columns": ["numpy"]},
)
